// Package catalog is the tenant-aware planner serving layer. It resolves
// (grid, model) pairs on demand, keeps an LRU-bounded cache of fully-loaded
// planner entries, deduplicates concurrent loads of the same key
// (single-flight: one training/registry load no matter how many requests
// race), ref-counts entries so an in-use planner is never torn down
// mid-Decide, and micro-batches concurrent Decide calls against the same
// planner so shared inference scratch is reused safely.
//
// Determinism contract: every task executed through Entry.Do runs on the
// entry's pooled planner after Planner.Reset(seed), and tasks within a batch
// run serially. A plan computed through the catalog is therefore
// byte-identical to one computed on a freshly constructed planner with the
// same seed, regardless of how requests happen to be batched together.
package catalog

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/routeplanning/mamorl/internal/approx"
	"github.com/routeplanning/mamorl/internal/features"
	"github.com/routeplanning/mamorl/internal/grid"
	"github.com/routeplanning/mamorl/internal/obs"
	"github.com/routeplanning/mamorl/internal/trace"
)

// Key identifies one cached planner: a grid name plus a model selector. The
// empty model selector means "the server's default model".
type Key struct {
	Grid  string `json:"grid"`
	Model string `json:"model"`
}

// NotFoundError reports an unknown grid or model selector. Handlers map it
// to a structured 404.
type NotFoundError struct {
	Kind string // "grid" or "model"
	Name string
}

func (e *NotFoundError) Error() string {
	return fmt.Sprintf("unknown %s %q", e.Kind, e.Name)
}

// ErrClosed is returned by Acquire and Entry.Do after the catalog (or the
// specific entry) has been shut down.
var ErrClosed = errors.New("catalog: closed")

// ModelArtifact is a resolved model: the inference weights, the feature
// extractor they were trained with, and provenance for observability.
type ModelArtifact struct {
	Model      approx.Model
	Ext        features.Extractor
	Source     string // e.g. "trained" or "registry"
	ArtifactID string // content-addressed registry ID, "" if unregistered
}

// ModelLoader resolves a model selector ("" = default, "seed:<n>",
// "name:<grid>", or a content-addressed artifact ID) to an artifact. It is
// invoked at most once per in-flight catalog key (single-flight); the loader
// may maintain its own selector-level cache to dedup across grids.
type ModelLoader func(ctx context.Context, selector string) (*ModelArtifact, error)

// Options configures a Catalog.
type Options struct {
	// Capacity bounds the number of resident planner entries (LRU beyond
	// it). Default 8.
	Capacity int
	// BatchWindow is how long the per-entry batch runner waits for
	// stragglers when fewer than MaxBatch tasks are pending. Zero disables
	// the wait (tasks still coalesce when they arrive while a batch is
	// executing). Default 0.
	BatchWindow time.Duration
	// MaxBatch caps tasks executed per batch round. Default 8.
	MaxBatch int
	// LoadModel resolves model selectors. Required.
	LoadModel ModelLoader
	// Metrics, when set, receives catalog counters/gauges/histograms.
	Metrics *obs.Registry
	// Tracer, when set, emits catalog.load / catalog.batch spans.
	Tracer *trace.Tracer
}

func (o Options) withDefaults() Options {
	if o.Capacity <= 0 {
		o.Capacity = 8
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8
	}
	return o
}

// Stats is a point-in-time view of the catalog counters.
type Stats struct {
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Evictions  uint64 `json:"evictions"`
	Loads      uint64 `json:"loads"`
	LoadErrors uint64 `json:"load_errors"`
	Batches    uint64 `json:"batches"`
	BatchTasks uint64 `json:"batch_tasks"`
}

// Catalog is the tenant-aware planner cache. All methods are safe for
// concurrent use.
type Catalog struct {
	opts Options

	mu      sync.Mutex
	grids   map[string]*grid.Grid
	entries map[Key]*Entry
	lru     *list.List // of *Entry, front = MRU
	loading map[Key]*loadCall
	closed  bool

	hits       atomic.Uint64
	misses     atomic.Uint64
	evictions  atomic.Uint64
	loads      atomic.Uint64
	loadErrors atomic.Uint64
	batches    atomic.Uint64
	batchTasks atomic.Uint64

	mHits      *obs.Counter
	mMisses    *obs.Counter
	mEvictions *obs.Counter
	mLoads     *obs.Counter
	mLoadErrs  *obs.Counter
	mEntries   *obs.Gauge
	hLoad      *obs.Histogram
	mBatches   *obs.Counter
	mBatchTask *obs.Counter
}

// loadCall is one in-flight single-flight load. done is closed exactly once,
// after completed/ent/err are set under the catalog mutex.
type loadCall struct {
	done      chan struct{}
	waiters   int
	completed bool
	ent       *Entry
	err       error
}

// New builds a Catalog. Options.LoadModel must be set.
func New(opts Options) *Catalog {
	opts = opts.withDefaults()
	c := &Catalog{
		opts:    opts,
		grids:   make(map[string]*grid.Grid),
		entries: make(map[Key]*Entry),
		lru:     list.New(),
		loading: make(map[Key]*loadCall),
	}
	if m := opts.Metrics; m != nil {
		c.mHits = m.Counter("catalog_hits_total")
		c.mMisses = m.Counter("catalog_misses_total")
		c.mEvictions = m.Counter("catalog_evictions_total")
		c.mLoads = m.Counter("catalog_loads_total")
		c.mLoadErrs = m.Counter("catalog_load_errors_total")
		c.mEntries = m.Gauge("catalog_entries")
		c.hLoad = m.Histogram("catalog_load_seconds", obs.DefaultLatencyBuckets)
		c.mBatches = m.Counter("catalog_batches_total")
		c.mBatchTask = m.Counter("catalog_batch_tasks_total")
		m.SetHelp("catalog_hits_total", "Planner catalog cache hits.")
		m.SetHelp("catalog_misses_total", "Planner catalog cache misses (each waiter on a cold key counts once).")
		m.SetHelp("catalog_evictions_total", "Planner entries evicted by LRU pressure or grid replacement.")
		m.SetHelp("catalog_loads_total", "Completed planner loads (single-flight: one per cold key).")
		m.SetHelp("catalog_load_errors_total", "Planner loads that failed.")
		m.SetHelp("catalog_entries", "Resident planner entries.")
		m.SetHelp("catalog_load_seconds", "Planner load latency (model resolve + planner build).")
		m.SetHelp("catalog_batches_total", "Micro-batch rounds executed across all planner entries.")
		m.SetHelp("catalog_batch_tasks_total", "Decide tasks executed through micro-batching.")
	}
	return c
}

// InstallGrid registers (or replaces) a named grid. Replacing a grid evicts
// every cached planner entry keyed to that name so stale (grid, planner)
// pairs cannot be served.
func (c *Catalog) InstallGrid(name string, g *grid.Grid) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, replacing := c.grids[name]
	c.grids[name] = g
	if !replacing {
		return
	}
	for key, ent := range c.entries {
		if key.Grid == name {
			c.evictEntryLocked(ent)
		}
	}
	c.setEntriesGaugeLocked()
}

// LookupGrid returns a registered grid by name.
func (c *Catalog) LookupGrid(name string) (*grid.Grid, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	g, ok := c.grids[name]
	return g, ok
}

// NumGrids reports how many grids are registered.
func (c *Catalog) NumGrids() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.grids)
}

// Grids returns the registered grids, sorted by name.
func (c *Catalog) Grids() []*grid.Grid {
	c.mu.Lock()
	defer c.mu.Unlock()
	gs := make([]*grid.Grid, 0, len(c.grids))
	for _, g := range c.grids {
		gs = append(gs, g)
	}
	sort.Slice(gs, func(i, j int) bool { return gs[i].Name() < gs[j].Name() })
	return gs
}

// GridNames returns the registered grid names, sorted.
func (c *Catalog) GridNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.grids))
	for name := range c.grids {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Acquire resolves key to a loaded planner entry, loading it on a miss.
// Concurrent Acquires of the same cold key share one load. The returned
// entry is ref-counted: callers must Release it when done (typically after
// Entry.Do returns).
func (c *Catalog) Acquire(ctx context.Context, key Key) (*Entry, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	g, ok := c.grids[key.Grid]
	if !ok {
		c.mu.Unlock()
		return nil, &NotFoundError{Kind: "grid", Name: key.Grid}
	}
	if ent, ok := c.entries[key]; ok {
		ent.refs++
		ent.hits++
		c.lru.MoveToFront(ent.elem)
		c.hits.Add(1)
		if c.mHits != nil {
			c.mHits.Inc()
		}
		c.mu.Unlock()
		return ent, nil
	}
	c.misses.Add(1)
	if c.mMisses != nil {
		c.mMisses.Inc()
	}
	call, inFlight := c.loading[key]
	if !inFlight {
		call = &loadCall{done: make(chan struct{})}
		c.loading[key] = call
		// The load runs under context.Background(): a canceled requester
		// must not poison the load for the waiters that remain.
		go c.load(key, g, call)
	}
	call.waiters++
	c.mu.Unlock()

	select {
	case <-call.done:
		c.mu.Lock()
		ent, err := call.ent, call.err
		c.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return ent, nil
	case <-ctx.Done():
		c.mu.Lock()
		if call.completed {
			// The load finished while we were giving up; drop the ref the
			// completion already assigned to us.
			if call.err == nil {
				c.releaseLocked(call.ent)
			}
		} else {
			call.waiters--
		}
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// load resolves the model, builds the pooled planner, and publishes the
// entry (or the error) to every waiter. Runs in its own goroutine.
func (c *Catalog) load(key Key, g *grid.Grid, call *loadCall) {
	span := c.opts.Tracer.Start("catalog.load",
		trace.String("grid", key.Grid), trace.String("model", key.Model))
	start := time.Now()
	art, err := c.opts.LoadModel(context.Background(), key.Model)
	elapsed := time.Since(start)
	if span != nil {
		span.SetAttrs(trace.Bool("error", err != nil))
	}

	var ent *Entry
	if err == nil {
		ent = &Entry{
			key:      key,
			cat:      c,
			model:    art.Model,
			ext:      art.Ext,
			source:   art.Source,
			artifact: art.ArtifactID,
			loadedAt: time.Now(),
		}
		ent.batch = &batcher{
			ent:     ent,
			planner: approx.NewPlanner(art.Model, art.Ext, 0),
			window:  c.opts.BatchWindow,
			max:     c.opts.MaxBatch,
		}
	}

	c.mu.Lock()
	// The grid may have been replaced while we were loading; serve the
	// current one so the entry never pairs a fresh planner with a stale map.
	if err == nil {
		if cur, ok := c.grids[key.Grid]; ok {
			ent.grid = cur
		} else {
			ent.grid = g
		}
	}
	call.completed = true
	call.err = err
	if err == nil {
		call.ent = ent
		ent.refs = call.waiters
		ent.elem = c.lru.PushFront(ent)
		c.entries[key] = ent
		c.loads.Add(1)
		if c.mLoads != nil {
			c.mLoads.Inc()
		}
		if c.hLoad != nil {
			var tid uint64
			if span != nil {
				tid = uint64(span.TraceID)
			}
			c.hLoad.ObserveExemplar(elapsed.Seconds(), tid, start.UnixNano())
		}
		c.evictOverCapacityLocked()
	} else {
		c.loadErrors.Add(1)
		if c.mLoadErrs != nil {
			c.mLoadErrs.Inc()
		}
	}
	delete(c.loading, key)
	c.setEntriesGaugeLocked()
	c.mu.Unlock()
	close(call.done)
	span.End()
}

// evictOverCapacityLocked trims LRU-tail entries above capacity.
func (c *Catalog) evictOverCapacityLocked() {
	for c.lru.Len() > c.opts.Capacity {
		back := c.lru.Back()
		if back == nil {
			return
		}
		c.evictEntryLocked(back.Value.(*Entry))
	}
}

// evictEntryLocked removes ent from the resident set. If it is still
// referenced by in-flight Decides it stays fully usable until the last
// Release, which performs the deferred close.
func (c *Catalog) evictEntryLocked(ent *Entry) {
	if ent.evicted {
		return
	}
	c.lru.Remove(ent.elem)
	delete(c.entries, ent.key)
	ent.evicted = true
	c.evictions.Add(1)
	if c.mEvictions != nil {
		c.mEvictions.Inc()
	}
	if ent.refs == 0 {
		ent.closeLocked()
	}
}

func (c *Catalog) releaseLocked(ent *Entry) {
	ent.refs--
	if ent.refs == 0 && ent.evicted && !ent.closed {
		ent.closeLocked()
	}
}

func (c *Catalog) setEntriesGaugeLocked() {
	if c.mEntries != nil {
		c.mEntries.Set(float64(len(c.entries)))
	}
}

// Close evicts every entry and rejects future Acquires. Entries still
// referenced by in-flight work stay valid until their last Release.
func (c *Catalog) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, ent := range c.entries {
		c.evictEntryLocked(ent)
	}
	c.setEntriesGaugeLocked()
}

// Stats returns the counters.
func (c *Catalog) Stats() Stats {
	return Stats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Evictions:  c.evictions.Load(),
		Loads:      c.loads.Load(),
		LoadErrors: c.loadErrors.Load(),
		Batches:    c.batches.Load(),
		BatchTasks: c.batchTasks.Load(),
	}
}

// EntrySnapshot is one resident entry in a Snapshot, MRU order.
type EntrySnapshot struct {
	Grid       string    `json:"grid"`
	Model      string    `json:"model"`
	Source     string    `json:"source"`
	Artifact   string    `json:"artifact,omitempty"`
	Refs       int       `json:"refs"`
	Hits       uint64    `json:"hits"`
	LoadedAt   time.Time `json:"loaded_at"`
	AgeSeconds float64   `json:"age_seconds"`
}

// BatchConfig reports the micro-batching knobs in a Snapshot.
type BatchConfig struct {
	WindowMS float64 `json:"window_ms"`
	MaxBatch int     `json:"max_batch"`
}

// Snapshot is the JSON document served by GET /debug/catalog.
type Snapshot struct {
	Capacity int             `json:"capacity"`
	Grids    []string        `json:"grids"`
	Entries  []EntrySnapshot `json:"entries"`
	Loading  []Key           `json:"loading"`
	Stats    Stats           `json:"stats"`
	Batch    BatchConfig     `json:"batch"`
}

// Snapshot captures the catalog state for debugging.
func (c *Catalog) Snapshot() Snapshot {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := Snapshot{
		Capacity: c.opts.Capacity,
		Entries:  make([]EntrySnapshot, 0, c.lru.Len()),
		Loading:  make([]Key, 0, len(c.loading)),
		Batch: BatchConfig{
			WindowMS: float64(c.opts.BatchWindow) / float64(time.Millisecond),
			MaxBatch: c.opts.MaxBatch,
		},
		Stats: Stats{
			Hits:       c.hits.Load(),
			Misses:     c.misses.Load(),
			Evictions:  c.evictions.Load(),
			Loads:      c.loads.Load(),
			LoadErrors: c.loadErrors.Load(),
			Batches:    c.batches.Load(),
			BatchTasks: c.batchTasks.Load(),
		},
	}
	snap.Grids = make([]string, 0, len(c.grids))
	for name := range c.grids {
		snap.Grids = append(snap.Grids, name)
	}
	sort.Strings(snap.Grids)
	for e := c.lru.Front(); e != nil; e = e.Next() {
		ent := e.Value.(*Entry)
		snap.Entries = append(snap.Entries, EntrySnapshot{
			Grid:       ent.key.Grid,
			Model:      ent.key.Model,
			Source:     ent.source,
			Artifact:   ent.artifact,
			Refs:       ent.refs,
			Hits:       ent.hits,
			LoadedAt:   ent.loadedAt,
			AgeSeconds: now.Sub(ent.loadedAt).Seconds(),
		})
	}
	for key := range c.loading {
		snap.Loading = append(snap.Loading, key)
	}
	sort.Slice(snap.Loading, func(i, j int) bool {
		if snap.Loading[i].Grid != snap.Loading[j].Grid {
			return snap.Loading[i].Grid < snap.Loading[j].Grid
		}
		return snap.Loading[i].Model < snap.Loading[j].Model
	})
	return snap
}
