package trace

import "github.com/routeplanning/mamorl/internal/obs"

// HistogramSink aggregates span durations into an obs registry: one
// histogram per span name, labeled span=<name>, plus a per-name completion
// counter. This is the bridge between the trace layer and the /metrics
// surface — dashboards see latency distributions and span rates (the
// time-series sampler converts the counter into spans/second) of missions,
// runs and requests without storing any spans.
type HistogramSink struct {
	Registry *obs.Registry
	// Name is the histogram metric name; empty selects "trace_span_seconds".
	Name string
	// CountName is the completion-counter metric name; empty selects
	// "trace_spans_total".
	CountName string
	// Bounds are the histogram buckets; nil selects
	// obs.DefaultLatencyBuckets.
	Bounds []float64
}

// NewHistogramSink aggregates into r under the default metric names.
func NewHistogramSink(r *obs.Registry) *HistogramSink {
	return &HistogramSink{Registry: r}
}

// Emit implements Sink.
func (h *HistogramSink) Emit(s *Span) {
	name := h.Name
	if name == "" {
		name = "trace_span_seconds"
	}
	countName := h.CountName
	if countName == "" {
		countName = "trace_spans_total"
	}
	bounds := h.Bounds
	if bounds == nil {
		bounds = obs.DefaultLatencyBuckets
	}
	h.Registry.Histogram(name, bounds, "span", s.Name).Observe(s.Dur.Seconds())
	h.Registry.Counter(countName, "span", s.Name).Inc()
}
