package trace

import "github.com/routeplanning/mamorl/internal/obs"

// HistogramSink aggregates span durations into an obs registry: one
// histogram per span name, labeled span=<name>. This is the bridge between
// the trace layer and the /metrics surface — dashboards see latency
// distributions of missions, runs and requests without storing any spans.
type HistogramSink struct {
	Registry *obs.Registry
	// Name is the metric name; empty selects "trace_span_seconds".
	Name string
	// Bounds are the histogram buckets; nil selects
	// obs.DefaultLatencyBuckets.
	Bounds []float64
}

// NewHistogramSink aggregates into r under the default metric name.
func NewHistogramSink(r *obs.Registry) *HistogramSink {
	return &HistogramSink{Registry: r}
}

// Emit implements Sink.
func (h *HistogramSink) Emit(s *Span) {
	name := h.Name
	if name == "" {
		name = "trace_span_seconds"
	}
	bounds := h.Bounds
	if bounds == nil {
		bounds = obs.DefaultLatencyBuckets
	}
	h.Registry.Histogram(name, bounds, "span", s.Name).Observe(s.Dur.Seconds())
}
