// Package trace is a stdlib-only, allocation-conscious span tracer for the
// whole pipeline: missions, training episodes, experiment runs, and TMPLAR
// requests all emit the same span/event records, fanned out to pluggable
// sinks (an in-memory ring buffer for /debug/traces, JSONL files for
// offline analysis and replay, obs histograms for aggregated latency).
//
// The design goal is zero cost when disabled: every method on a nil *Tracer
// or nil *Span is a no-op, so instrumented code carries exactly one pointer
// comparison per call. Hot loops that build attributes should additionally
// guard with Enabled() — a variadic attribute list is materialized by the
// caller before the nil receiver can discard it:
//
//	if sp.Enabled() {
//		sp.Event("step", trace.Int("epoch", int64(e)))
//	}
//
// A Span's mutating methods (Event, SetAttrs, End) are single-goroutine;
// Child is safe to call concurrently because it only reads immutable
// identity fields. Completed spans are immutable and safe to share across
// goroutines, which is what makes the lock-free Ring sink sound.
package trace

import (
	"context"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end trace (a mission, a request, a training
// pipeline). The zero value means "no trace".
type TraceID uint64

// String renders the ID as 16 hex digits, the form used in logs and the
// X-Trace-Id response header.
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// ParseTraceID inverts TraceID.String.
func ParseTraceID(s string) (TraceID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: bad trace id %q: %w", s, err)
	}
	return TraceID(v), nil
}

// SpanID identifies one span within a tracer's lifetime.
type SpanID uint64

// Kind discriminates an Attr's payload.
type Kind uint8

// Attr payload kinds.
const (
	KindString Kind = iota
	KindInt
	KindFloat
	KindBool
)

// Attr is one typed key/value attribute. The payload lives in value fields
// rather than an interface so that building an attribute does not box.
type Attr struct {
	Key  string
	kind Kind
	str  string
	num  float64
	i    int64
}

// String builds a string attribute.
func String(key, v string) Attr { return Attr{Key: key, kind: KindString, str: v} }

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, kind: KindInt, i: v} }

// Float builds a float attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, kind: KindFloat, num: v} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr {
	a := Attr{Key: key, kind: KindBool}
	if v {
		a.i = 1
	}
	return a
}

// Kind returns the payload kind.
func (a Attr) Kind() Kind { return a.kind }

// Str returns the string payload (empty for other kinds).
func (a Attr) Str() string { return a.str }

// IntVal returns the integer payload (0 for other kinds).
func (a Attr) IntVal() int64 { return a.i }

// FloatVal returns the float payload (0 for other kinds).
func (a Attr) FloatVal() float64 { return a.num }

// BoolVal returns the boolean payload (false for other kinds).
func (a Attr) BoolVal() bool { return a.i != 0 }

// Any returns the payload as an interface value (JSON export).
func (a Attr) Any() any {
	switch a.kind {
	case KindString:
		return a.str
	case KindInt:
		return a.i
	case KindFloat:
		return a.num
	default:
		return a.i != 0
	}
}

// GetAttr finds the first attribute with the given key.
func GetAttr(attrs []Attr, key string) (Attr, bool) {
	for _, a := range attrs {
		if a.Key == key {
			return a, true
		}
	}
	return Attr{}, false
}

// Event is a point-in-time record inside a span (a mission step, a
// communication exchange, a reroute).
type Event struct {
	Name string
	// Offset is the event time relative to the span start.
	Offset time.Duration
	Attrs  []Attr
}

// Attr finds an event attribute by key.
func (e Event) Attr(key string) (Attr, bool) { return GetAttr(e.Attrs, key) }

// Span is one timed operation. Identity fields (TraceID, ID, Parent, Name,
// Start) are immutable after creation; Attrs/Events/Dur settle when End is
// called, after which the span is immutable.
type Span struct {
	TraceID TraceID
	ID      SpanID
	Parent  SpanID
	Name    string
	Start   time.Time
	Dur     time.Duration
	Attrs   []Attr
	Events  []Event

	tracer *Tracer
	ended  bool
}

// Enabled reports whether the span records anything. Hot paths guard
// attribute construction with it.
func (s *Span) Enabled() bool { return s != nil }

// SetAttrs appends attributes to the span. No-op on nil or ended spans.
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil || s.ended {
		return
	}
	s.Attrs = append(s.Attrs, attrs...)
}

// Event appends a typed event stamped with the current offset. No-op on nil
// or ended spans.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil || s.ended {
		return
	}
	e := Event{Name: name, Offset: time.Since(s.Start)}
	e.Attrs = append(e.Attrs, attrs...)
	s.Events = append(s.Events, e)
}

// EventsNamed returns the span's events with the given name, in order.
func (s *Span) EventsNamed(name string) []Event {
	if s == nil {
		return nil
	}
	var out []Event
	for _, e := range s.Events {
		if e.Name == name {
			out = append(out, e)
		}
	}
	return out
}

// Child starts a sub-span sharing the trace ID. Returns nil on a nil
// receiver, so call chains degrade to no-ops when tracing is off. Safe to
// call concurrently from sibling goroutines.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.start(s.TraceID, s.ID, name, attrs)
}

// End stamps the duration and hands the completed span to the tracer's
// sinks. Safe to call twice (the second call is a no-op) and on nil.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.Dur = time.Since(s.Start)
	s.ended = true
	s.tracer.emit(s)
}

// Sink consumes completed spans. Emit is called from whatever goroutine
// ended the span; implementations must be safe for concurrent use.
type Sink interface {
	Emit(s *Span)
}

// Tracer mints spans and fans completed ones out to its sinks. A nil
// *Tracer is the disabled tracer: Start returns nil and everything
// downstream no-ops.
type Tracer struct {
	sinks   []Sink
	spanIDs atomic.Uint64
	traces  atomic.Uint64
}

// New builds a tracer over the given sinks.
func New(sinks ...Sink) *Tracer {
	return &Tracer{sinks: sinks}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Start begins a new root span under a fresh trace ID. Returns nil on a nil
// receiver.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.start(TraceID(t.traces.Add(1)), 0, name, attrs)
}

// StartTrace begins a root span under an explicit trace ID (e.g. one parsed
// from an incoming request header). Returns nil on a nil receiver.
func (t *Tracer) StartTrace(id TraceID, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.start(id, 0, name, attrs)
}

func (t *Tracer) start(trace TraceID, parent SpanID, name string, attrs []Attr) *Span {
	s := &Span{
		TraceID: trace,
		ID:      SpanID(t.spanIDs.Add(1)),
		Parent:  parent,
		Name:    name,
		Start:   time.Now(),
		tracer:  t,
	}
	s.Attrs = append(s.Attrs, attrs...)
	return s
}

func (t *Tracer) emit(s *Span) {
	if t == nil {
		return
	}
	for _, sink := range t.sinks {
		sink.Emit(s)
	}
}

// --- Context propagation -----------------------------------------------------

type ctxKey struct{}

// ContextWithSpan returns a context carrying the span (e.g. an HTTP request
// span that planner spans should parent under).
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
