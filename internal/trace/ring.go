package trace

import "sync/atomic"

// Ring is a lock-free, fixed-capacity buffer of the most recent completed
// spans. Writers claim a slot with one atomic add and store an immutable
// *Span pointer; there is no lock to contend on and no allocation per emit,
// so a ring can sit on the serving path permanently. tmplard keeps one and
// serves it at GET /debug/traces.
//
// Reads are best-effort snapshots: a snapshot taken while writers are
// active can miss a slot that has been claimed but not yet stored (it reads
// either the previous occupant or nil), which is the right trade for a
// diagnostic buffer.
type Ring struct {
	mask  uint64
	pos   atomic.Uint64
	slots []atomic.Pointer[Span]
}

// NewRing returns a ring holding the last capacity spans (rounded up to a
// power of two, minimum 16).
func NewRing(capacity int) *Ring {
	n := 16
	for n < capacity {
		n <<= 1
	}
	return &Ring{mask: uint64(n - 1), slots: make([]atomic.Pointer[Span], n)}
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Emit implements Sink.
func (r *Ring) Emit(s *Span) {
	i := r.pos.Add(1) - 1
	r.slots[i&r.mask].Store(s)
}

// Len returns the number of spans currently held (at most Cap).
func (r *Ring) Len() int {
	n := r.pos.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Snapshot returns the buffered spans, oldest first. Spans are immutable;
// the returned slice is freshly allocated.
func (r *Ring) Snapshot() []*Span {
	end := r.pos.Load()
	start := uint64(0)
	if end > uint64(len(r.slots)) {
		start = end - uint64(len(r.slots))
	}
	out := make([]*Span, 0, end-start)
	for i := start; i < end; i++ {
		if s := r.slots[i&r.mask].Load(); s != nil {
			out = append(out, s)
		}
	}
	return out
}
