package trace

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/routeplanning/mamorl/internal/obs"
)

func TestTraceIDRoundTrip(t *testing.T) {
	id := TraceID(0xdeadbeef12345678)
	s := id.String()
	if len(s) != 16 {
		t.Fatalf("String() = %q, want 16 hex digits", s)
	}
	back, err := ParseTraceID(s)
	if err != nil {
		t.Fatalf("ParseTraceID(%q): %v", s, err)
	}
	if back != id {
		t.Fatalf("round trip: got %v want %v", back, id)
	}
	if _, err := ParseTraceID("not-hex"); err == nil {
		t.Fatal("ParseTraceID accepted garbage")
	}
}

func TestAttrAccessors(t *testing.T) {
	cases := []struct {
		a    Attr
		kind Kind
		any  any
	}{
		{String("k", "v"), KindString, "v"},
		{Int("k", 42), KindInt, int64(42)},
		{Float("k", 1.5), KindFloat, 1.5},
		{Bool("k", true), KindBool, true},
		{Bool("k", false), KindBool, false},
	}
	for _, c := range cases {
		if c.a.Kind() != c.kind {
			t.Errorf("Kind() = %v want %v", c.a.Kind(), c.kind)
		}
		if c.a.Any() != c.any {
			t.Errorf("Any() = %v want %v", c.a.Any(), c.any)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Start("root", String("k", "v"))
	if sp != nil {
		t.Fatal("nil tracer minted a span")
	}
	if sp.Enabled() {
		t.Fatal("nil span reports enabled")
	}
	// All of these must be no-ops, not panics.
	sp.SetAttrs(Int("a", 1))
	sp.Event("ev", Bool("b", true))
	sp.End()
	sp.End()
	if c := sp.Child("child"); c != nil {
		t.Fatal("nil span minted a child")
	}
	if got := sp.EventsNamed("ev"); got != nil {
		t.Fatalf("nil span has events: %v", got)
	}
}

// TestNilSpanAllocs pins the disabled-tracing fast path: guarded emission
// against a nil span must not allocate.
func TestNilSpanAllocs(t *testing.T) {
	var sp *Span
	avg := testing.AllocsPerRun(1000, func() {
		if sp.Enabled() {
			sp.Event("step", Int("epoch", 3))
		}
		sp.End()
	})
	if avg != 0 {
		t.Fatalf("disabled-tracing path allocates %.1f/op, want 0", avg)
	}
}

func TestSpanLifecycle(t *testing.T) {
	ring := NewRing(16)
	tr := New(ring)
	root := tr.Start("mission", String("planner", "mamorl"))
	if !root.Enabled() {
		t.Fatal("live span reports disabled")
	}
	root.Event("step", Int("epoch", 0))
	root.Event("step", Int("epoch", 1))
	root.Event("found", Int("asset", 2))
	child := root.Child("decide")
	if child.TraceID != root.TraceID {
		t.Fatalf("child trace %v != root trace %v", child.TraceID, root.TraceID)
	}
	if child.Parent != root.ID {
		t.Fatalf("child parent %v != root id %v", child.Parent, root.ID)
	}
	child.End()
	root.SetAttrs(Int("epochs", 2))
	root.End()

	if root.Dur < 0 {
		t.Fatalf("negative duration %v", root.Dur)
	}
	// End is idempotent and post-End mutation is ignored.
	durBefore := root.Dur
	root.End()
	root.Event("late")
	root.SetAttrs(Int("late", 1))
	if root.Dur != durBefore || len(root.EventsNamed("late")) != 0 {
		t.Fatal("span mutated after End")
	}
	if a, ok := GetAttr(root.Attrs, "late"); ok {
		t.Fatalf("attr added after End: %v", a)
	}

	steps := root.EventsNamed("step")
	if len(steps) != 2 {
		t.Fatalf("EventsNamed(step) = %d events, want 2", len(steps))
	}
	if a, ok := steps[1].Attr("epoch"); !ok || a.IntVal() != 1 {
		t.Fatalf("step[1] epoch attr = %v, %v", a, ok)
	}

	got := ring.Snapshot()
	if len(got) != 2 {
		t.Fatalf("ring holds %d spans, want 2", len(got))
	}
	// Child ended first, so it is oldest.
	if got[0].Name != "decide" || got[1].Name != "mission" {
		t.Fatalf("ring order: %q, %q", got[0].Name, got[1].Name)
	}
}

func TestRingWraparound(t *testing.T) {
	ring := NewRing(16)
	if ring.Cap() != 16 {
		t.Fatalf("Cap() = %d want 16", ring.Cap())
	}
	tr := New(ring)
	for i := 0; i < 40; i++ {
		sp := tr.Start("s", Int("i", int64(i)))
		sp.End()
	}
	if ring.Len() != 16 {
		t.Fatalf("Len() = %d want 16", ring.Len())
	}
	snap := ring.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("Snapshot() = %d spans, want 16", len(snap))
	}
	// Oldest-first: the surviving spans are i = 24..39.
	for k, s := range snap {
		a, ok := GetAttr(s.Attrs, "i")
		if !ok || a.IntVal() != int64(24+k) {
			t.Fatalf("snap[%d] i = %v (ok=%v), want %d", k, a.IntVal(), ok, 24+k)
		}
	}
}

func TestRingCapacityRounding(t *testing.T) {
	for _, c := range []struct{ in, want int }{{0, 16}, {1, 16}, {16, 16}, {17, 32}, {100, 128}} {
		if got := NewRing(c.in).Cap(); got != c.want {
			t.Errorf("NewRing(%d).Cap() = %d want %d", c.in, got, c.want)
		}
	}
}

// TestRingConcurrentEmit exercises the lock-free publish under the race
// detector: concurrent writers plus a snapshotting reader.
func TestRingConcurrentEmit(t *testing.T) {
	ring := NewRing(64)
	tr := New(ring)
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, s := range ring.Snapshot() {
				if s.Name != "w" {
					t.Errorf("snapshot saw foreign span %q", s.Name)
					return
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				sp := tr.Start("w", Int("writer", int64(w)), Int("i", int64(i)))
				sp.Event("tick")
				sp.End()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Writers finish quickly; release the reader once the counter shows all
	// emits have landed.
	for ring.pos.Load() < writers*perWriter {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
	if ring.Len() != 64 {
		t.Fatalf("Len() = %d want 64", ring.Len())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	jw := NewJSONLWriter(&buf)
	tr := New(jw)

	root := tr.Start("mission", String("planner", "exact"), Int("assets", 2), Float("p_comm", 0.9), Bool("found", true))
	root.Event("step", Int("epoch", 0), String("actions", "n1@s2|wait"))
	root.Event("communicate", Int("group", 1))
	child := root.Child("decide", Int("epoch", 0))
	child.End()
	root.End()
	if err := jw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	spans, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(spans) != 2 {
		t.Fatalf("read %d spans, want 2", len(spans))
	}
	// File order is end order: child first.
	dec, mis := spans[0], spans[1]
	if dec.Name != "decide" || mis.Name != "mission" {
		t.Fatalf("names: %q, %q", dec.Name, mis.Name)
	}
	if dec.TraceID != mis.TraceID || dec.Parent != mis.ID {
		t.Fatalf("lineage lost: trace %v/%v parent %v id %v", dec.TraceID, mis.TraceID, dec.Parent, mis.ID)
	}
	if a, ok := GetAttr(mis.Attrs, "planner"); !ok || a.Str() != "exact" {
		t.Fatalf("planner attr: %v %v", a, ok)
	}
	if a, ok := GetAttr(mis.Attrs, "found"); !ok || !a.BoolVal() {
		t.Fatalf("found attr: %v %v", a, ok)
	}
	// Ints round-trip as floats on the wire; value is preserved.
	if a, ok := GetAttr(mis.Attrs, "assets"); !ok || a.FloatVal() != 2 {
		t.Fatalf("assets attr: %v %v", a, ok)
	}
	steps := mis.EventsNamed("step")
	if len(steps) != 1 {
		t.Fatalf("steps: %d", len(steps))
	}
	if a, ok := steps[0].Attr("actions"); !ok || a.Str() != "n1@s2|wait" {
		t.Fatalf("actions attr: %v %v", a, ok)
	}

	// Re-marshal is byte-identical: the wire form is a fixed point.
	var buf2 bytes.Buffer
	jw2 := NewJSONLWriter(&buf2)
	jw2.Emit(spans[0])
	jw2.Emit(spans[1])
	if err := jw2.Flush(); err != nil {
		t.Fatalf("Flush 2: %v", err)
	}
	if buf.String() != buf2.String() {
		t.Fatalf("re-marshal differs:\n%s\nvs\n%s", buf.String(), buf2.String())
	}
}

func TestHistogramSink(t *testing.T) {
	reg := obs.New()
	tr := New(NewHistogramSink(reg))
	sp := tr.Start("run")
	sp.End()
	sp2 := tr.Start("mission")
	sp2.End()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE trace_span_seconds histogram",
		`trace_span_seconds_count{span="run"} 1`,
		`trace_span_seconds_count{span="mission"} 1`,
		// The completion counter is the span-rate series: the time-series
		// sampler turns it into spans/second for the dashboard.
		"# TYPE trace_spans_total counter",
		`trace_spans_total{span="run"} 1`,
		`trace_spans_total{span="mission"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if got := reg.CounterValue("trace_spans_total", "span", "run"); got != 1 {
		t.Errorf("trace_spans_total{span=run} = %d, want 1", got)
	}
}

func TestHistogramSinkCustomCountName(t *testing.T) {
	reg := obs.New()
	sink := &HistogramSink{Registry: reg, CountName: "my_spans_total"}
	tr := New(sink)
	tr.Start("x").End()
	if got := reg.CounterValue("my_spans_total", "span", "x"); got != 1 {
		t.Errorf("custom counter = %d, want 1", got)
	}
	if got := reg.CounterValue("trace_spans_total", "span", "x"); got != 0 {
		t.Errorf("default counter also written: %d", got)
	}
}

func TestContextPropagation(t *testing.T) {
	tr := New()
	sp := tr.Start("req")
	base := context.Background()
	ctx := ContextWithSpan(base, sp)
	if got := SpanFromContext(ctx); got != sp {
		t.Fatalf("SpanFromContext = %v want %v", got, sp)
	}
	if got := SpanFromContext(base); got != nil {
		t.Fatalf("empty context yields span %v", got)
	}
	// Nil span leaves the context untouched.
	if ctx2 := ContextWithSpan(base, nil); SpanFromContext(ctx2) != nil {
		t.Fatal("nil span stored in context")
	}
}
