package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// spanJSON is the wire form of one span: one JSON object per line. Times
// are unix nanoseconds; event times are offsets from the span start.
type spanJSON struct {
	Trace  string         `json:"trace"`
	Span   uint64         `json:"span"`
	Parent uint64         `json:"parent,omitempty"`
	Name   string         `json:"name"`
	Start  int64          `json:"start_ns"`
	Dur    int64          `json:"dur_ns"`
	Attrs  map[string]any `json:"attrs,omitempty"`
	Events []eventJSON    `json:"events,omitempty"`
}

type eventJSON struct {
	Name  string         `json:"name"`
	TNS   int64          `json:"t_ns"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

func attrsToMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Any()
	}
	return m
}

// attrsFromMap inverts attrsToMap. JSON numbers come back as float64 — the
// int/float distinction is not preserved on the wire, which is fine for a
// diagnostic record (re-marshaling yields identical bytes either way).
// Keys are sorted so a decoded span is deterministic.
func attrsFromMap(m map[string]any) []Attr {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	attrs := make([]Attr, 0, len(m))
	for _, k := range keys {
		switch v := m[k].(type) {
		case string:
			attrs = append(attrs, String(k, v))
		case bool:
			attrs = append(attrs, Bool(k, v))
		case float64:
			attrs = append(attrs, Float(k, v))
		default:
			attrs = append(attrs, String(k, fmt.Sprint(v)))
		}
	}
	return attrs
}

func (s *Span) toWire() spanJSON {
	w := spanJSON{
		Trace:  s.TraceID.String(),
		Span:   uint64(s.ID),
		Parent: uint64(s.Parent),
		Name:   s.Name,
		Start:  s.Start.UnixNano(),
		Dur:    int64(s.Dur),
		Attrs:  attrsToMap(s.Attrs),
	}
	for _, e := range s.Events {
		w.Events = append(w.Events, eventJSON{Name: e.Name, TNS: int64(e.Offset), Attrs: attrsToMap(e.Attrs)})
	}
	return w
}

func spanFromWire(w spanJSON) (*Span, error) {
	id, err := ParseTraceID(w.Trace)
	if err != nil {
		return nil, err
	}
	s := &Span{
		TraceID: id,
		ID:      SpanID(w.Span),
		Parent:  SpanID(w.Parent),
		Name:    w.Name,
		Start:   time.Unix(0, w.Start).UTC(),
		Dur:     time.Duration(w.Dur),
		Attrs:   attrsFromMap(w.Attrs),
		ended:   true,
	}
	for _, e := range w.Events {
		s.Events = append(s.Events, Event{Name: e.Name, Offset: time.Duration(e.TNS), Attrs: attrsFromMap(e.Attrs)})
	}
	return s, nil
}

// MarshalJSON renders the span in its wire form.
func (s *Span) MarshalJSON() ([]byte, error) { return json.Marshal(s.toWire()) }

// UnmarshalJSON parses the wire form.
func (s *Span) UnmarshalJSON(data []byte) error {
	var w spanJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	parsed, err := spanFromWire(w)
	if err != nil {
		return err
	}
	*s = *parsed
	return nil
}

// JSONLWriter is a Sink streaming one span per line. Emit is
// mutex-serialized; buffered output is flushed by Flush (call it before
// reading the file — cmd/experiments defers one around the suite).
type JSONLWriter struct {
	mu  sync.Mutex
	buf *bufio.Writer
	err error
}

// NewJSONLWriter wraps w in a buffered JSONL span sink.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{buf: bufio.NewWriterSize(w, 64<<10)}
}

// Emit implements Sink. The first write error sticks and suppresses
// subsequent writes; Flush reports it.
func (jw *JSONLWriter) Emit(s *Span) {
	data, err := json.Marshal(s.toWire())
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if jw.err != nil {
		return
	}
	if err != nil {
		jw.err = err
		return
	}
	if _, err := jw.buf.Write(data); err != nil {
		jw.err = err
		return
	}
	jw.err = jw.buf.WriteByte('\n')
}

// Flush drains the buffer and returns the first error seen.
func (jw *JSONLWriter) Flush() error {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if err := jw.buf.Flush(); jw.err == nil {
		jw.err = err
	}
	return jw.err
}

// ReadJSONL parses spans written by JSONLWriter, in file order.
func ReadJSONL(r io.Reader) ([]*Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var out []*Span
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var w spanJSON
		if err := json.Unmarshal(sc.Bytes(), &w); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		s, err := spanFromWire(w)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return out, nil
}
