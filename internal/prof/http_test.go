package prof

import (
	"context"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func newMux(p *Profiler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /debug/prof", p.ListHandler())
	mux.Handle("GET /debug/prof/{id}", p.GetHandler())
	return mux
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestHTTPDisabled(t *testing.T) {
	var p *Profiler
	mux := newMux(p)

	rec := get(t, mux, "/debug/prof")
	if rec.Code != http.StatusOK {
		t.Fatalf("list status = %d", rec.Code)
	}
	var list ListResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if list.Enabled || len(list.Captures) != 0 {
		t.Fatalf("disabled list = %+v", list)
	}
	if rec := get(t, mux, "/debug/prof/c000001"); rec.Code != http.StatusNotFound {
		t.Fatalf("disabled get status = %d", rec.Code)
	}
}

func TestHTTPEnabled(t *testing.T) {
	p := New(Options{Interval: time.Hour, Window: 20 * time.Millisecond})
	c := p.CaptureNow(context.Background(), ReasonManual)
	mux := newMux(p)

	var list ListResponse
	if err := json.Unmarshal(get(t, mux, "/debug/prof").Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if !list.Enabled || len(list.Captures) != 1 || list.Captures[0].ID != c.ID {
		t.Fatalf("list = %+v", list)
	}
	if len(list.Captures[0].Profiles) == 0 {
		t.Fatalf("list entry has no profile summaries: %+v", list.Captures[0])
	}

	rec := get(t, mux, "/debug/prof/"+c.ID)
	if rec.Code != http.StatusOK {
		t.Fatalf("get status = %d", rec.Code)
	}
	var got Capture
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != c.ID || got.State != "done" || len(got.Tables) == 0 {
		t.Fatalf("capture = %+v", got)
	}

	raw := get(t, mux, "/debug/prof/"+c.ID+"?format=raw&kind=heap")
	if raw.Code != http.StatusOK {
		t.Fatalf("raw status = %d", raw.Code)
	}
	b := raw.Body.Bytes()
	if len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
		t.Fatalf("raw download is not gzipped pprof (first bytes % x)", b[:min(4, len(b))])
	}

	if rec := get(t, mux, "/debug/prof/nope"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown id status = %d", rec.Code)
	}
	if rec := get(t, mux, "/debug/prof/"+c.ID+"?format=raw&kind=nope"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown raw kind status = %d", rec.Code)
	}
}

// TestProfShapeGolden pins the JSON shape of /debug/prof and
// /debug/prof/{id} so dashboard and benchjson consumers can't be silently
// broken. Values are reduced to a type skeleton; run with -update to accept
// intentional shape changes.
func TestProfShapeGolden(t *testing.T) {
	p := New(Options{Interval: time.Hour, Window: 10 * time.Millisecond})
	c := p.CaptureNow(context.Background(), ReasonManual)
	mux := newMux(p)

	checkShape(t, "prof_list", get(t, mux, "/debug/prof").Body.Bytes())
	checkShape(t, "prof_capture", get(t, mux, "/debug/prof/"+c.ID).Body.Bytes())
}

// checkShape reduces a JSON payload to its type skeleton and compares it to
// testdata/<name>.shape.json.
func checkShape(t *testing.T, name string, body []byte) {
	t.Helper()
	var v any
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	shape, err := json.MarshalIndent(shapeOf(v), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	shape = append(shape, '\n')
	path := filepath.Join("testdata", name+".shape.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, shape, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if string(want) != string(shape) {
		t.Errorf("%s JSON shape changed.\n got: %s\nwant: %s\nRun `go test ./internal/prof -run ShapeGolden -update` if intentional.", name, shape, want)
	}
}

// shapeOf reduces decoded JSON to a type skeleton: objects keep their keys,
// arrays collapse to one merged element shape, scalars become their type
// name. Dynamic values (ids, timestamps, sample counts) therefore don't
// churn the golden.
func shapeOf(v any) any {
	switch x := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, vv := range x {
			out[k] = shapeOf(vv)
		}
		return out
	case []any:
		var merged any = "empty"
		for _, e := range x {
			merged = mergeShape(merged, shapeOf(e))
		}
		return []any{merged}
	case string:
		return "string"
	case float64:
		return "number"
	case bool:
		return "bool"
	case nil:
		return "null"
	default:
		return "unknown"
	}
}

// mergeShape unions two element shapes; null/empty defer to the other side,
// and irreconcilable scalars collapse to "mixed".
func mergeShape(a, b any) any {
	if a == "empty" || a == "null" {
		return b
	}
	if b == "empty" || b == "null" {
		return a
	}
	if am, ok := a.(map[string]any); ok {
		if bm, ok := b.(map[string]any); ok {
			for k, bv := range bm {
				if av, exists := am[k]; exists {
					am[k] = mergeShape(av, bv)
				} else {
					am[k] = bv
				}
			}
			return am
		}
	}
	if aa, ok := a.([]any); ok {
		if bb, ok := b.([]any); ok && len(aa) == 1 && len(bb) == 1 {
			return []any{mergeShape(aa[0], bb[0])}
		}
	}
	if sa, ok := a.(string); ok {
		if sb, ok := b.(string); ok {
			switch {
			case sa == sb:
				return sa
			case sa == "null" || sa == "empty":
				return sb
			case sb == "null" || sb == "empty":
				return sa
			}
		}
	}
	return "mixed"
}
