package prof

import (
	"bytes"
	"compress/gzip"
	"io"
	"runtime/pprof"
	"testing"
)

func writeHeapProfile(w io.Writer) error {
	return pprof.Lookup("heap").WriteTo(w, 0)
}

// pbw is a minimal protobuf writer used to hand-build profile payloads, so
// the decoder is tested against independently constructed bytes rather than
// its own output.
type pbw struct{ buf bytes.Buffer }

func (w *pbw) varint(v uint64) {
	for v >= 0x80 {
		w.buf.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	w.buf.WriteByte(byte(v))
}

func (w *pbw) tag(field, wire int) { w.varint(uint64(field)<<3 | uint64(wire)) }

func (w *pbw) intField(field int, v int64) {
	w.tag(field, 0)
	w.varint(uint64(v))
}

func (w *pbw) msg(field int, body []byte) {
	w.tag(field, 2)
	w.varint(uint64(len(body)))
	w.buf.Write(body)
}

func (w *pbw) packed(field int, vs ...int64) {
	var inner pbw
	for _, v := range vs {
		inner.varint(uint64(v))
	}
	w.msg(field, inner.buf.Bytes())
}

func (w *pbw) unpacked(field int, vs ...int64) {
	for _, v := range vs {
		w.intField(field, v)
	}
}

func valueType(typ, unit int64) []byte {
	var w pbw
	w.intField(1, typ)
	w.intField(2, unit)
	return w.buf.Bytes()
}

func location(id int64, fnIDs ...int64) []byte {
	var w pbw
	w.intField(1, id)
	for _, fn := range fnIDs {
		var line pbw
		line.intField(1, fn)
		line.intField(2, 42) // line number, ignored by the decoder
		w.msg(4, line.buf.Bytes())
	}
	return w.buf.Bytes()
}

func function(id, name int64) []byte {
	var w pbw
	w.intField(1, id)
	w.intField(2, name)
	return w.buf.Bytes()
}

// buildTestProfile encodes a two-value (samples/count, cpu/nanoseconds)
// profile with an inlined frame. packed selects packed vs one-at-a-time
// encoding for the repeated sample fields — both are legal on the wire.
func buildTestProfile(packed bool) []byte {
	var w pbw
	w.msg(1, valueType(1, 2)) // samples/count
	w.msg(1, valueType(3, 4)) // cpu/nanoseconds

	sample := func(locs []int64, vals []int64) {
		var s pbw
		if packed {
			s.packed(1, locs...)
			s.packed(2, vals...)
		} else {
			s.unpacked(1, locs...)
			s.unpacked(2, vals...)
		}
		w.msg(2, s.buf.Bytes())
	}
	sample([]int64{1, 2, 3}, []int64{5, 50_000_000})
	sample([]int64{4, 3}, []int64{3, 30_000_000})
	sample([]int64{2, 3}, []int64{2, 20_000_000})

	w.msg(4, location(1, 1))
	w.msg(4, location(2, 2))
	w.msg(4, location(3, 3))
	w.msg(4, location(4, 1, 2)) // main.hot inlined into main.caller

	w.msg(5, function(1, 5))
	w.msg(5, function(2, 6))
	w.msg(5, function(3, 7))

	for _, s := range []string{"", "samples", "count", "cpu", "nanoseconds", "main.hot", "main.caller", "runtime.main"} {
		w.msg(6, []byte(s))
	}

	w.intField(9, 1700000000_000000000) // time_nanos
	w.intField(10, 1_000_000_000)       // duration_nanos
	w.msg(11, valueType(3, 4))          // period_type cpu/nanoseconds
	w.intField(12, 10_000_000)          // period
	return w.buf.Bytes()
}

func TestParseAndAggregate(t *testing.T) {
	for _, tc := range []struct {
		name   string
		packed bool
		gz     bool
	}{
		{"packed", true, false},
		{"unpacked", false, false},
		{"gzipped", true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data := buildTestProfile(tc.packed)
			if tc.gz {
				var buf bytes.Buffer
				zw := gzip.NewWriter(&buf)
				if _, err := zw.Write(data); err != nil {
					t.Fatal(err)
				}
				if err := zw.Close(); err != nil {
					t.Fatal(err)
				}
				data = buf.Bytes()
			}
			p, err := Parse(data)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if got, want := len(p.Samples), 3; got != want {
				t.Fatalf("samples = %d, want %d", got, want)
			}
			if got, want := len(p.SampleTypes), 2; got != want {
				t.Fatalf("sample types = %d, want %d", got, want)
			}
			if p.SampleTypes[1] != (ValueType{Type: "cpu", Unit: "nanoseconds"}) {
				t.Fatalf("sample type[1] = %+v", p.SampleTypes[1])
			}
			if p.PeriodType.Type != "cpu" || p.Period != 10_000_000 {
				t.Fatalf("period = %+v / %d", p.PeriodType, p.Period)
			}
			if p.DurationNanos != 1_000_000_000 {
				t.Fatalf("duration = %d", p.DurationNanos)
			}

			if got, want := p.ValueIndex("cpu"), 1; got != want {
				t.Fatalf("ValueIndex(cpu) = %d, want %d", got, want)
			}
			if got, want := p.ValueIndex("nope"), 1; got != want {
				t.Fatalf("ValueIndex fallback = %d, want last index %d", got, want)
			}

			tab := Aggregate(p, "cpu", 1, 0)
			if tab.Samples != 3 || tab.Total != 100_000_000 {
				t.Fatalf("samples/total = %d/%d", tab.Samples, tab.Total)
			}
			if tab.Unit != "nanoseconds" {
				t.Fatalf("unit = %q", tab.Unit)
			}
			want := []FuncStat{
				{Name: "main.hot", Flat: 80_000_000, FlatPct: 80, Cum: 80_000_000, CumPct: 80},
				{Name: "main.caller", Flat: 20_000_000, FlatPct: 20, Cum: 100_000_000, CumPct: 100},
				{Name: "runtime.main", Flat: 0, FlatPct: 0, Cum: 100_000_000, CumPct: 100},
			}
			if len(tab.Funcs) != len(want) {
				t.Fatalf("rows = %+v", tab.Funcs)
			}
			for i, w := range want {
				if tab.Funcs[i] != w {
					t.Errorf("row %d = %+v, want %+v", i, tab.Funcs[i], w)
				}
			}
		})
	}
}

func TestAggregateTopN(t *testing.T) {
	p, err := Parse(buildTestProfile(true))
	if err != nil {
		t.Fatal(err)
	}
	// topN=1 keeps the union of top-1 by flat (main.hot) and top-1 by cum
	// (main.caller, which ties runtime.main on cum but wins on flat).
	tab := Aggregate(p, "cpu", 1, 1)
	if len(tab.Funcs) != 2 {
		t.Fatalf("rows = %+v", tab.Funcs)
	}
	if tab.Funcs[0].Name != "main.hot" || tab.Funcs[1].Name != "main.caller" {
		t.Fatalf("rows = %+v", tab.Funcs)
	}
}

func TestParseSampleCountColumn(t *testing.T) {
	p, err := Parse(buildTestProfile(true))
	if err != nil {
		t.Fatal(err)
	}
	tab := Aggregate(p, "cpu", 0, 0)
	if tab.Total != 10 || tab.Unit != "count" {
		t.Fatalf("total/unit = %d/%q", tab.Total, tab.Unit)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte{0x1f, 0x8b, 0x00}); err == nil {
		t.Error("corrupt gzip: want error")
	}
	full := buildTestProfile(true)
	if _, err := Parse(full[:len(full)-3]); err == nil {
		t.Error("truncated payload: want error")
	}
	// A sample whose value count disagrees with the sample types must fail
	// rather than panic the aggregator later.
	var w pbw
	w.msg(1, valueType(1, 2))
	var s pbw
	s.packed(1, 1)
	s.packed(2, 1, 2, 3)
	w.msg(2, s.buf.Bytes())
	for _, str := range []string{"", "samples", "count"} {
		w.msg(6, []byte(str))
	}
	if _, err := Parse(w.buf.Bytes()); err == nil {
		t.Error("mismatched value arity: want error")
	}
}

// TestParseRealProfile decodes an actual runtime/pprof heap profile to keep
// the hand-rolled decoder honest against the real encoder.
func TestParseRealProfile(t *testing.T) {
	var buf bytes.Buffer
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 64<<10))
	}
	_ = sink
	if err := writeHeapProfile(&buf); err != nil {
		t.Fatalf("heap profile: %v", err)
	}
	p, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(p.SampleTypes) == 0 || len(p.Functions) == 0 {
		t.Fatalf("decoded profile is empty: %d sample types, %d functions", len(p.SampleTypes), len(p.Functions))
	}
	idx := p.ValueIndex(defaultValueType("heap")...)
	tab := Aggregate(p, "heap", idx, 10)
	if tab.Total <= 0 || len(tab.Funcs) == 0 {
		t.Fatalf("heap table empty: %+v", tab)
	}
	if tab.Unit != "bytes" {
		t.Fatalf("heap unit = %q, want bytes", tab.Unit)
	}
}
