package prof

import (
	"encoding/json"
	"net/http"
)

// ListResponse is the GET /debug/prof body.
type ListResponse struct {
	Enabled  bool             `json:"enabled"`
	Captures []CaptureSummary `json:"captures"`
}

// ListHandler serves the capture list. On a disabled (nil) profiler it
// serves {"enabled":false,"captures":[]} rather than erroring, so dashboards
// can probe it unconditionally.
func (p *Profiler) ListHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp := ListResponse{Enabled: p.Enabled(), Captures: p.Snapshot()}
		if resp.Captures == nil {
			resp.Captures = []CaptureSummary{}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
	})
}

// GetHandler serves one capture by {id} path value: the aggregated
// hot-function tables as JSON, or with ?kind=cpu&format=raw the retained raw
// gzipped pprof payload for `go tool pprof`.
func (p *Profiler) GetHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !p.Enabled() {
			http.Error(w, `{"error":"profiler disabled"}`, http.StatusNotFound)
			return
		}
		id := r.PathValue("id")
		if r.URL.Query().Get("format") == "raw" {
			kind := r.URL.Query().Get("kind")
			if kind == "" {
				kind = "cpu"
			}
			raw, ok := p.Raw(id, kind)
			if !ok {
				http.Error(w, `{"error":"no raw profile retained"}`, http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Disposition", `attachment; filename="`+id+`-`+kind+`.pb.gz"`)
			_, _ = w.Write(raw)
			return
		}
		c, ok := p.Get(id)
		if !ok {
			http.Error(w, `{"error":"unknown capture"}`, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(c)
	})
}
