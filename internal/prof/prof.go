package prof

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"runtime/pprof"
	"sync"
	"time"

	"github.com/routeplanning/mamorl/internal/obs"
)

// Capture kinds collected on every capture. CPU is a windowed profile; the
// rest are instantaneous snapshots (mutex/block are empty unless the runtime
// rates are armed, e.g. via tmplard -mutex-profile-fraction).
var captureKinds = []string{"cpu", "heap", "goroutine", "mutex", "block"}

// Capture reasons.
const (
	ReasonScheduled = "scheduled"
	ReasonManual    = "manual"
	// SLO-triggered captures use "slo:<name>:<state>" via TriggerCapture.
)

// Options configures a Profiler. The zero value is usable: 5s CPU windows
// every 60s, 32 retained captures, top 30 functions per table.
type Options struct {
	// Interval is the scheduled capture cadence.
	Interval time.Duration
	// Window is the CPU profile length per capture; clamped below Interval.
	Window time.Duration
	// MaxCaptures bounds the capture ring.
	MaxCaptures int
	// TopN bounds each hot-function table (union of top-N by flat and cum).
	TopN int
	// MaxRawBytes bounds total retained raw pprof bytes across the ring;
	// older captures drop their raw payloads first (tables are kept).
	MaxRawBytes int
	// Metrics receives prof_* counters/gauges when non-nil.
	Metrics *obs.Registry
	// Logger receives one record per finished capture when non-nil.
	Logger *slog.Logger
	// Now and Ticker inject fake clocks for tests.
	Now    func() time.Time
	Ticker func(time.Duration) (<-chan time.Time, func())
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 60 * time.Second
	}
	if o.Window <= 0 {
		o.Window = 5 * time.Second
	}
	if o.Window >= o.Interval {
		o.Window = o.Interval / 2
	}
	if o.MaxCaptures <= 0 {
		o.MaxCaptures = 32
	}
	if o.TopN <= 0 {
		o.TopN = 30
	}
	if o.MaxRawBytes <= 0 {
		o.MaxRawBytes = 16 << 20
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Ticker == nil {
		o.Ticker = func(d time.Duration) (<-chan time.Time, func()) {
			t := time.NewTicker(d)
			return t.C, t.Stop
		}
	}
	return o
}

// Capture is one profiling capture: a CPU window plus snapshots, folded into
// hot-function tables. Raw profile bytes are retained (bounded) for download
// into `go tool pprof`.
type Capture struct {
	ID            string    `json:"id"`
	Reason        string    `json:"reason"`
	Start         time.Time `json:"start"`
	WindowSeconds float64   `json:"window_seconds"`
	// State is "pending" while the CPU window is still open, then "done" or
	// "failed".
	State  string  `json:"state"`
	Error  string  `json:"error,omitempty"`
	Tables []Table `json:"tables,omitempty"`

	raw map[string][]byte
}

// TableSummary is a Table without its rows, for capture listings.
type TableSummary struct {
	Kind    string `json:"kind"`
	Unit    string `json:"unit"`
	Samples int    `json:"samples"`
	Total   int64  `json:"total"`
}

// CaptureSummary is the /debug/prof listing entry for one capture.
type CaptureSummary struct {
	ID            string         `json:"id"`
	Reason        string         `json:"reason"`
	Start         time.Time      `json:"start"`
	WindowSeconds float64        `json:"window_seconds"`
	State         string         `json:"state"`
	Error         string         `json:"error,omitempty"`
	Profiles      []TableSummary `json:"profiles,omitempty"`
}

// Profiler runs the continuous-profiling loop. A nil *Profiler is a valid
// disabled profiler: every method no-ops without allocating, so callers wire
// it unconditionally (same pattern as trace.Tracer and limits.Budget).
type Profiler struct {
	opts Options

	mu       sync.Mutex
	captures []*Capture // oldest first
	seq      int
	inflight *Capture
	rawBytes int
}

// New returns an enabled profiler. Run starts the schedule; TriggerCapture
// and CaptureNow work without Run.
func New(opts Options) *Profiler {
	return &Profiler{opts: opts.withDefaults()}
}

// Enabled reports whether the profiler is live.
func (p *Profiler) Enabled() bool { return p != nil }

// Window returns the configured CPU window (zero when disabled).
func (p *Profiler) Window() time.Duration {
	if p == nil {
		return 0
	}
	return p.opts.Window
}

// Run takes scheduled captures every Interval until ctx is done. A tick that
// lands while a capture is already in flight is skipped.
func (p *Profiler) Run(ctx context.Context) {
	if p == nil {
		return
	}
	tick, stop := p.opts.Ticker(p.opts.Interval)
	defer stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick:
			if c, started := p.begin(ReasonScheduled); started {
				p.collect(ctx, c)
			}
		}
	}
}

// TriggerCapture starts an immediate out-of-schedule capture and returns its
// ID without waiting for the window to close — the pending capture is
// resolvable through Get at once. When a capture is already in flight its ID
// is returned instead (runtime/pprof allows one CPU profile at a time).
// Returns "" on a disabled profiler.
func (p *Profiler) TriggerCapture(reason string) string {
	if p == nil {
		return ""
	}
	c, started := p.begin(reason)
	if started {
		go p.collect(context.Background(), c)
	}
	return c.ID
}

// CaptureNow runs one full capture synchronously and returns it. If a
// capture is already in flight, that capture is returned instead (it may
// still be pending). Returns nil on a disabled profiler.
func (p *Profiler) CaptureNow(ctx context.Context, reason string) *Capture {
	if p == nil {
		return nil
	}
	c, started := p.begin(reason)
	if started {
		p.collect(ctx, c)
	}
	return c
}

// begin registers a pending capture, or returns the in-flight one.
func (p *Profiler) begin(reason string) (c *Capture, started bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.inflight != nil {
		return p.inflight, false
	}
	p.seq++
	c = &Capture{
		ID:            fmt.Sprintf("c%06d", p.seq),
		Reason:        reason,
		Start:         p.opts.Now(),
		WindowSeconds: p.opts.Window.Seconds(),
		State:         "pending",
	}
	p.inflight = c
	p.captures = append(p.captures, c)
	if len(p.captures) > p.opts.MaxCaptures {
		drop := p.captures[0]
		p.rawBytes -= rawSize(drop)
		p.captures = p.captures[1:]
	}
	return c, true
}

// collect runs the capture body: CPU window, snapshots, decode, fold.
func (p *Profiler) collect(ctx context.Context, c *Capture) {
	raw := make(map[string][]byte, len(captureKinds))
	var cpuErr error

	var cpuBuf bytes.Buffer
	if err := pprof.StartCPUProfile(&cpuBuf); err != nil {
		// Another CPU profile is active (e.g. an operator-driven -pprof
		// session); keep the snapshot kinds rather than failing the capture.
		cpuErr = err
	} else {
		timer := time.NewTimer(p.opts.Window)
		select {
		case <-ctx.Done():
		case <-timer.C:
		}
		timer.Stop()
		pprof.StopCPUProfile()
		raw["cpu"] = cpuBuf.Bytes()
	}

	for _, kind := range captureKinds[1:] {
		prof := pprof.Lookup(kind)
		if prof == nil {
			continue
		}
		var buf bytes.Buffer
		if err := prof.WriteTo(&buf, 0); err == nil {
			raw[kind] = buf.Bytes()
		}
	}

	var tables []Table
	var decodeErr error
	for _, kind := range captureKinds {
		data, ok := raw[kind]
		if !ok {
			continue
		}
		parsed, err := Parse(data)
		if err != nil {
			decodeErr = fmt.Errorf("%s: %w", kind, err)
			delete(raw, kind)
			continue
		}
		idx := parsed.ValueIndex(defaultValueType(kind)...)
		tables = append(tables, Aggregate(parsed, kind, idx, p.opts.TopN))
	}

	p.mu.Lock()
	c.Tables = tables
	c.raw = raw
	switch {
	case len(tables) > 0:
		c.State = "done"
	default:
		c.State = "failed"
	}
	if cpuErr != nil {
		c.Error = "cpu: " + cpuErr.Error()
	} else if decodeErr != nil {
		c.Error = decodeErr.Error()
	}
	if c.State == "failed" && c.Error == "" {
		c.Error = "no profiles collected"
	}
	p.rawBytes += rawSize(c)
	// Shed raw payloads oldest-first until under budget; tables stay.
	for i := 0; i < len(p.captures) && p.rawBytes > p.opts.MaxRawBytes; i++ {
		old := p.captures[i]
		if old == c || old.raw == nil {
			continue
		}
		p.rawBytes -= rawSize(old)
		old.raw = nil
	}
	if p.inflight == c {
		p.inflight = nil
	}
	retained := len(p.captures)
	p.mu.Unlock()

	if m := p.opts.Metrics; m != nil {
		m.Counter("prof_captures_total", "trigger", triggerLabel(c.Reason)).Inc()
		if c.Error != "" {
			m.Counter("prof_capture_errors_total").Inc()
		}
		m.Gauge("prof_captures_retained").Set(float64(retained))
	}
	if l := p.opts.Logger; l != nil {
		l.LogAttrs(context.Background(), slog.LevelInfo, "profile capture",
			slog.String("capture", c.ID),
			slog.String("reason", c.Reason),
			slog.String("state", c.State),
			slog.Int("tables", len(tables)),
			slog.String("error", c.Error),
		)
	}
}

// triggerLabel keeps the metrics label cardinality bounded: slo-triggered
// reasons carry the SLO name in the capture record, not the label.
func triggerLabel(reason string) string {
	switch {
	case reason == ReasonScheduled, reason == ReasonManual:
		return reason
	case len(reason) >= 4 && reason[:4] == "slo:":
		return "slo"
	default:
		return "other"
	}
}

func rawSize(c *Capture) int {
	n := 0
	for _, b := range c.raw {
		n += len(b)
	}
	return n
}

// Snapshot lists retained captures newest-first, without table rows.
func (p *Profiler) Snapshot() []CaptureSummary {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]CaptureSummary, 0, len(p.captures))
	for i := len(p.captures) - 1; i >= 0; i-- {
		c := p.captures[i]
		s := CaptureSummary{
			ID:            c.ID,
			Reason:        c.Reason,
			Start:         c.Start,
			WindowSeconds: c.WindowSeconds,
			State:         c.State,
			Error:         c.Error,
		}
		for _, t := range c.Tables {
			s.Profiles = append(s.Profiles, TableSummary{Kind: t.Kind, Unit: t.Unit, Samples: t.Samples, Total: t.Total})
		}
		out = append(out, s)
	}
	return out
}

// Get returns a copy of one capture by ID. Tables are set once when the
// capture finishes, so sharing the slice with the caller is safe.
func (p *Profiler) Get(id string) (Capture, bool) {
	if p == nil {
		return Capture{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.captures {
		if c.ID == id {
			cp := *c
			cp.raw = nil
			return cp, true
		}
	}
	return Capture{}, false
}

// Raw returns the retained raw pprof bytes for one capture kind (gzipped
// protobuf, as runtime/pprof wrote them).
func (p *Profiler) Raw(id, kind string) ([]byte, bool) {
	if p == nil {
		return nil, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.captures {
		if c.ID == id {
			b, ok := c.raw[kind]
			return b, ok
		}
	}
	return nil, false
}
