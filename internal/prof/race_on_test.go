//go:build race

package prof

// raceEnabled mirrors the race detector build tag: the detector inflates
// allocation counts, which the disabled-profiler alloc regression test pins.
const raceEnabled = true
