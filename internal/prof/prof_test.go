package prof

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/routeplanning/mamorl/internal/obs"
)

// testOptions returns options with a tiny real CPU window so captures finish
// fast, and a fixed clock for deterministic timestamps.
func testOptions() Options {
	return Options{
		Interval: time.Hour, // schedule driven manually in tests
		Window:   20 * time.Millisecond,
		Now:      func() time.Time { return time.Unix(1700000000, 0).UTC() },
	}
}

// burn gives the CPU profiler something to sample while a window is open.
func burn(stop <-chan struct{}) {
	x := 1.0
	for {
		select {
		case <-stop:
			return
		default:
			for i := 0; i < 1000; i++ {
				x = x*1.000001 + 1
			}
		}
	}
}

func TestCaptureNow(t *testing.T) {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); burn(stop) }()
	defer func() { close(stop); wg.Wait() }()

	reg := obs.New()
	p := New(Options{Interval: time.Hour, Window: 20 * time.Millisecond, Metrics: reg})
	c := p.CaptureNow(context.Background(), ReasonManual)
	if c == nil || c.State != "done" {
		t.Fatalf("capture = %+v", c)
	}
	if c.ID == "" || c.Reason != ReasonManual {
		t.Fatalf("capture id/reason = %q/%q", c.ID, c.Reason)
	}
	kinds := map[string]Table{}
	for _, tab := range c.Tables {
		kinds[tab.Kind] = tab
	}
	// The heap table is the reliability anchor: a test process always has
	// live allocations, so a capture must never come back empty.
	heap := kinds["heap"]
	if heap.Total <= 0 || len(heap.Funcs) == 0 {
		t.Fatalf("heap table empty: %+v", heap)
	}
	if _, ok := kinds["goroutine"]; !ok {
		t.Fatalf("no goroutine table in %+v", kinds)
	}
	if _, ok := kinds["cpu"]; !ok {
		t.Fatalf("no cpu table in %+v", kinds)
	}
	if got := reg.CounterValue("prof_captures_total", "trigger", "manual"); got != 1 {
		t.Fatalf("prof_captures_total{trigger=manual} = %d", got)
	}
	if got := reg.GaugeValue("prof_captures_retained"); got != 1 {
		t.Fatalf("prof_captures_retained = %v", got)
	}

	// The capture resolves through Get and the raw CPU payload is retained.
	got, ok := p.Get(c.ID)
	if !ok || got.ID != c.ID {
		t.Fatalf("Get(%q) = %+v, %v", c.ID, got, ok)
	}
	raw, ok := p.Raw(c.ID, "heap")
	if !ok || len(raw) == 0 {
		t.Fatalf("Raw heap missing")
	}
	if _, err := Parse(raw); err != nil {
		t.Fatalf("retained raw does not parse: %v", err)
	}
}

func TestScheduledCapturesWithFakeTicker(t *testing.T) {
	tick := make(chan time.Time)
	stopped := false
	opts := testOptions()
	opts.Ticker = func(d time.Duration) (<-chan time.Time, func()) {
		if d != time.Hour {
			t.Errorf("ticker interval = %v, want 1h", d)
		}
		return tick, func() { stopped = true }
	}
	p := New(opts)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); p.Run(ctx) }()

	for i := 0; i < 2; i++ {
		tick <- time.Time{}
	}
	// The second tick is only consumed once the first capture finished, so
	// two sends guarantee at least one completed scheduled capture.
	deadline := time.Now().Add(5 * time.Second)
	for {
		caps := p.Snapshot()
		if len(caps) >= 1 && caps[len(caps)-1].State != "pending" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no finished capture: %+v", caps)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-done
	if !stopped {
		t.Error("Run did not stop its ticker")
	}
	caps := p.Snapshot()
	if caps[len(caps)-1].Reason != ReasonScheduled {
		t.Fatalf("reason = %q", caps[len(caps)-1].Reason)
	}
	if caps[len(caps)-1].Start != time.Unix(1700000000, 0).UTC() {
		t.Fatalf("start = %v", caps[len(caps)-1].Start)
	}
}

func TestTriggerCaptureDedupsInflight(t *testing.T) {
	p := New(Options{Interval: time.Hour, Window: 200 * time.Millisecond})
	id1 := p.TriggerCapture("slo:plan-latency:breach")
	id2 := p.TriggerCapture("slo:plan-latency:breach")
	if id1 == "" || id1 != id2 {
		t.Fatalf("in-flight dedup: %q vs %q", id1, id2)
	}
	// The pending capture is resolvable immediately, before the window ends.
	c, ok := p.Get(id1)
	if !ok || c.State != "pending" {
		t.Fatalf("pending capture = %+v, %v", c, ok)
	}
	waitDone(t, p, id1)
	id3 := p.TriggerCapture(ReasonManual)
	if id3 == id1 {
		t.Fatalf("new trigger reused id %q", id3)
	}
	waitDone(t, p, id3)
}

func waitDone(t *testing.T, p *Profiler, id string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, ok := p.Get(id)
		if ok && c.State != "pending" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("capture %q never finished", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRingRetention(t *testing.T) {
	p := New(Options{Interval: time.Hour, Window: 5 * time.Millisecond, MaxCaptures: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		c := p.CaptureNow(context.Background(), ReasonManual)
		ids = append(ids, c.ID)
	}
	caps := p.Snapshot()
	if len(caps) != 2 {
		t.Fatalf("retained %d captures, want 2", len(caps))
	}
	if caps[0].ID != ids[3] || caps[1].ID != ids[2] {
		t.Fatalf("retained %q/%q, want newest-first %q/%q", caps[0].ID, caps[1].ID, ids[3], ids[2])
	}
	if _, ok := p.Get(ids[0]); ok {
		t.Error("evicted capture still resolvable")
	}
}

func TestRawRetentionShedsOldestFirst(t *testing.T) {
	// A 1-byte cap: every capture's raw payloads exceed it, so after the
	// second capture the first must have shed raw bytes while keeping
	// tables (the in-flight capture itself is never shed).
	p := New(Options{Interval: time.Hour, Window: 5 * time.Millisecond, MaxRawBytes: 1})
	c1 := p.CaptureNow(context.Background(), ReasonManual)
	c2 := p.CaptureNow(context.Background(), ReasonManual)
	if _, ok := p.Raw(c1.ID, "heap"); ok {
		t.Error("oldest capture kept raw bytes past the budget")
	}
	got, ok := p.Get(c1.ID)
	if !ok || len(got.Tables) == 0 {
		t.Fatalf("shedding raw dropped tables: %+v, %v", got, ok)
	}
	if _, ok := p.Raw(c2.ID, "heap"); !ok {
		t.Error("newest capture lost its raw bytes")
	}
}

// TestDisabledProfilerZeroCost pins the nil fast path at 0 allocs/op — the
// same contract trace.Tracer and limits.Budget keep when disabled.
func TestDisabledProfilerZeroCost(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts inflated under the race detector")
	}
	var p *Profiler
	ctx := context.Background()
	allocs := testing.AllocsPerRun(256, func() {
		if p.Enabled() {
			t.Error("nil profiler reports enabled")
		}
		if id := p.TriggerCapture(ReasonManual); id != "" {
			t.Errorf("nil TriggerCapture = %q", id)
		}
		if c := p.CaptureNow(ctx, ReasonManual); c != nil {
			t.Error("nil CaptureNow returned a capture")
		}
		if s := p.Snapshot(); s != nil {
			t.Error("nil Snapshot returned data")
		}
		if _, ok := p.Get("c000001"); ok {
			t.Error("nil Get found a capture")
		}
		if _, ok := p.Raw("c000001", "cpu"); ok {
			t.Error("nil Raw found bytes")
		}
		if d := p.Window(); d != 0 {
			t.Errorf("nil Window = %v", d)
		}
		p.Run(ctx)
	})
	if allocs != 0 {
		t.Fatalf("disabled profiler allocated %.1f/op, want 0", allocs)
	}
}

// TestConcurrentTriggerAndRead exercises trigger/list/get under the race
// detector.
func TestConcurrentTriggerAndRead(t *testing.T) {
	p := New(Options{Interval: time.Hour, Window: 2 * time.Millisecond, MaxCaptures: 4, MaxRawBytes: 64 << 10})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if g%2 == 0 {
					id := p.TriggerCapture(fmt.Sprintf("slo:test-%d:warn", g))
					if id == "" {
						t.Error("enabled TriggerCapture returned empty id")
						return
					}
					// t.Fatal is test-goroutine-only, so poll inline.
					deadline := time.Now().Add(5 * time.Second)
					for {
						c, ok := p.Get(id)
						if ok && c.State != "pending" {
							break
						}
						if !ok {
							break // evicted by a concurrent trigger
						}
						if time.Now().After(deadline) {
							t.Errorf("capture %q never finished", id)
							return
						}
						time.Sleep(2 * time.Millisecond)
					}
				} else {
					for _, s := range p.Snapshot() {
						c, _ := p.Get(s.ID)
						_, _ = p.Raw(c.ID, "cpu")
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if caps := p.Snapshot(); len(caps) == 0 || len(caps) > 4 {
		t.Fatalf("retained %d captures", len(caps))
	}
}
