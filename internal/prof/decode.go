// Package prof is a stdlib-only continuous profiling plane.
//
// A Profiler takes periodic CPU profile windows plus heap/goroutine/mutex/
// block snapshots, decodes the pprof protobuf in-process, and folds the
// samples into bounded hot-function tables kept in a ring of captures. The
// SLO engine triggers out-of-schedule captures on warn/breach transitions so
// a burn always has an attached forensic snapshot.
//
// This file implements the decoder: a minimal gzip + varint/message parser
// for the subset of profile.proto the aggregator needs (sample types,
// samples, locations, lines, functions, the string table and period/duration
// metadata). It depends on nothing outside the standard library.
package prof

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
)

// ValueType names one dimension of a profile's sample values.
type ValueType struct {
	Type string `json:"type"`
	Unit string `json:"unit"`
}

// Sample is one stack sample: a location stack (leaf first) and one value
// per sample type.
type Sample struct {
	LocationIDs []uint64
	Values      []int64
}

// Location resolves one program address to the functions live there,
// innermost first (multiple entries mean inlining).
type Location struct {
	ID          uint64
	FunctionIDs []uint64
}

// Function is a named function referenced by locations.
type Function struct {
	ID   uint64
	Name string
}

// Profile is the decoded subset of a pprof profile.
type Profile struct {
	SampleTypes   []ValueType
	Samples       []Sample
	Locations     map[uint64]*Location
	Functions     map[uint64]*Function
	TimeNanos     int64
	DurationNanos int64
	Period        int64
	PeriodType    ValueType
}

var errTruncated = errors.New("prof: truncated profile")

// Parse decodes a pprof profile, transparently gunzipping when the payload
// carries the gzip magic (runtime/pprof always emits gzip).
func Parse(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip: %w", err)
		}
		data, err = io.ReadAll(zr)
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip: %w", err)
		}
	}

	// String-table indices can reference entries emitted later in the
	// stream, so decode into index-carrying intermediates and resolve once
	// the whole message has been walked.
	type rawValueType struct{ typ, unit int64 }
	type rawFunction struct {
		id   uint64
		name int64
	}
	var (
		strtab      []string
		sampleTypes []rawValueType
		periodType  rawValueType
		functions   []rawFunction
	)
	p := &Profile{
		Locations: make(map[uint64]*Location),
		Functions: make(map[uint64]*Function),
	}

	b := &pbuf{data: data}
	for !b.done() {
		field, wire, err := b.tag()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1: // repeated ValueType sample_type
			msg, err := b.lenField(wire)
			if err != nil {
				return nil, err
			}
			vt, err := parseValueType(msg)
			if err != nil {
				return nil, err
			}
			sampleTypes = append(sampleTypes, rawValueType{vt[0], vt[1]})
		case 2: // repeated Sample sample
			msg, err := b.lenField(wire)
			if err != nil {
				return nil, err
			}
			s, err := parseSample(msg)
			if err != nil {
				return nil, err
			}
			p.Samples = append(p.Samples, s)
		case 4: // repeated Location location
			msg, err := b.lenField(wire)
			if err != nil {
				return nil, err
			}
			loc, err := parseLocation(msg)
			if err != nil {
				return nil, err
			}
			p.Locations[loc.ID] = loc
		case 5: // repeated Function function
			msg, err := b.lenField(wire)
			if err != nil {
				return nil, err
			}
			id, name, err := parseFunction(msg)
			if err != nil {
				return nil, err
			}
			functions = append(functions, rawFunction{id: id, name: name})
		case 6: // repeated string string_table
			msg, err := b.lenField(wire)
			if err != nil {
				return nil, err
			}
			strtab = append(strtab, string(msg))
		case 9: // int64 time_nanos
			v, err := b.intField(wire)
			if err != nil {
				return nil, err
			}
			p.TimeNanos = v
		case 10: // int64 duration_nanos
			v, err := b.intField(wire)
			if err != nil {
				return nil, err
			}
			p.DurationNanos = v
		case 11: // ValueType period_type
			msg, err := b.lenField(wire)
			if err != nil {
				return nil, err
			}
			vt, err := parseValueType(msg)
			if err != nil {
				return nil, err
			}
			periodType = rawValueType{vt[0], vt[1]}
		case 12: // int64 period
			v, err := b.intField(wire)
			if err != nil {
				return nil, err
			}
			p.Period = v
		default:
			if err := b.skip(wire); err != nil {
				return nil, err
			}
		}
	}

	str := func(i int64) string {
		if i > 0 && int(i) < len(strtab) {
			return strtab[i]
		}
		return ""
	}
	for _, vt := range sampleTypes {
		p.SampleTypes = append(p.SampleTypes, ValueType{Type: str(vt.typ), Unit: str(vt.unit)})
	}
	p.PeriodType = ValueType{Type: str(periodType.typ), Unit: str(periodType.unit)}
	for _, fn := range functions {
		p.Functions[fn.id] = &Function{ID: fn.id, Name: str(fn.name)}
	}
	for _, s := range p.Samples {
		if len(s.Values) != len(p.SampleTypes) {
			return nil, fmt.Errorf("prof: sample has %d values for %d sample types", len(s.Values), len(p.SampleTypes))
		}
	}
	return p, nil
}

// parseValueType returns the [type, unit] string-table indices.
func parseValueType(msg []byte) ([2]int64, error) {
	var out [2]int64
	b := &pbuf{data: msg}
	for !b.done() {
		field, wire, err := b.tag()
		if err != nil {
			return out, err
		}
		switch field {
		case 1, 2:
			v, err := b.intField(wire)
			if err != nil {
				return out, err
			}
			out[field-1] = v
		default:
			if err := b.skip(wire); err != nil {
				return out, err
			}
		}
	}
	return out, nil
}

func parseSample(msg []byte) (Sample, error) {
	var s Sample
	b := &pbuf{data: msg}
	for !b.done() {
		field, wire, err := b.tag()
		if err != nil {
			return s, err
		}
		switch field {
		case 1: // repeated uint64 location_id (possibly packed)
			s.LocationIDs, err = appendUints(s.LocationIDs, b, wire)
		case 2: // repeated int64 value (possibly packed)
			s.Values, err = appendInts(s.Values, b, wire)
		default:
			err = b.skip(wire)
		}
		if err != nil {
			return s, err
		}
	}
	return s, nil
}

func parseLocation(msg []byte) (*Location, error) {
	loc := &Location{}
	b := &pbuf{data: msg}
	for !b.done() {
		field, wire, err := b.tag()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1: // uint64 id
			v, err := b.intField(wire)
			if err != nil {
				return nil, err
			}
			loc.ID = uint64(v)
		case 4: // repeated Line line
			msg, err := b.lenField(wire)
			if err != nil {
				return nil, err
			}
			fnID, err := parseLine(msg)
			if err != nil {
				return nil, err
			}
			loc.FunctionIDs = append(loc.FunctionIDs, fnID)
		default:
			if err := b.skip(wire); err != nil {
				return nil, err
			}
		}
	}
	return loc, nil
}

// parseLine returns the line's function_id.
func parseLine(msg []byte) (uint64, error) {
	var fnID uint64
	b := &pbuf{data: msg}
	for !b.done() {
		field, wire, err := b.tag()
		if err != nil {
			return 0, err
		}
		if field == 1 {
			v, err := b.intField(wire)
			if err != nil {
				return 0, err
			}
			fnID = uint64(v)
			continue
		}
		if err := b.skip(wire); err != nil {
			return 0, err
		}
	}
	return fnID, nil
}

// parseFunction returns the function's id and the string-table index of its
// name.
func parseFunction(msg []byte) (id uint64, name int64, err error) {
	b := &pbuf{data: msg}
	for !b.done() {
		field, wire, err := b.tag()
		if err != nil {
			return 0, 0, err
		}
		switch field {
		case 1:
			v, err := b.intField(wire)
			if err != nil {
				return 0, 0, err
			}
			id = uint64(v)
		case 2:
			v, err := b.intField(wire)
			if err != nil {
				return 0, 0, err
			}
			name = v
		default:
			if err := b.skip(wire); err != nil {
				return 0, 0, err
			}
		}
	}
	return id, name, nil
}

// pbuf is a cursor over raw protobuf bytes.
type pbuf struct {
	data []byte
	pos  int
}

func (b *pbuf) done() bool { return b.pos >= len(b.data) }

func (b *pbuf) varint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if b.pos >= len(b.data) {
			return 0, errTruncated
		}
		c := b.data[b.pos]
		b.pos++
		if shift == 63 && c > 1 {
			return 0, errors.New("prof: varint overflows uint64")
		}
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
		shift += 7
		if shift >= 64 {
			return 0, errors.New("prof: varint overflows uint64")
		}
	}
}

func (b *pbuf) tag() (field, wire int, err error) {
	v, err := b.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(v >> 3), int(v & 7), nil
}

// lenField reads a length-delimited payload; any other wire type is an
// encoding error for the fields we route here.
func (b *pbuf) lenField(wire int) ([]byte, error) {
	if wire != 2 {
		return nil, fmt.Errorf("prof: expected length-delimited field, got wire type %d", wire)
	}
	n, err := b.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(b.data)-b.pos) {
		return nil, errTruncated
	}
	out := b.data[b.pos : b.pos+int(n)]
	b.pos += int(n)
	return out, nil
}

// skip discards one field of the given wire type.
func (b *pbuf) skip(wire int) error {
	switch wire {
	case 0: // varint
		_, err := b.varint()
		return err
	case 1: // fixed64
		if len(b.data)-b.pos < 8 {
			return errTruncated
		}
		b.pos += 8
		return nil
	case 2: // length-delimited
		_, err := b.lenField(wire)
		return err
	case 5: // fixed32
		if len(b.data)-b.pos < 4 {
			return errTruncated
		}
		b.pos += 4
		return nil
	default:
		return fmt.Errorf("prof: unsupported wire type %d", wire)
	}
}

// intField reads a scalar int64/uint64 field encoded as a varint.
func (b *pbuf) intField(wire int) (int64, error) {
	if wire != 0 {
		return 0, fmt.Errorf("prof: expected varint field, got wire type %d", wire)
	}
	v, err := b.varint()
	return int64(v), err
}

// appendUints consumes one occurrence of a repeated integer field, which the
// encoder may emit packed (wire type 2) or one element at a time (wire 0).
func appendUints(dst []uint64, b *pbuf, wire int) ([]uint64, error) {
	if wire == 0 {
		v, err := b.varint()
		if err != nil {
			return dst, err
		}
		return append(dst, v), nil
	}
	raw, err := b.lenField(wire)
	if err != nil {
		return dst, err
	}
	inner := &pbuf{data: raw}
	for !inner.done() {
		v, err := inner.varint()
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

func appendInts(dst []int64, b *pbuf, wire int) ([]int64, error) {
	if wire == 0 {
		v, err := b.varint()
		if err != nil {
			return dst, err
		}
		return append(dst, int64(v)), nil
	}
	raw, err := b.lenField(wire)
	if err != nil {
		return dst, err
	}
	inner := &pbuf{data: raw}
	for !inner.done() {
		v, err := inner.varint()
		if err != nil {
			return dst, err
		}
		dst = append(dst, int64(v))
	}
	return dst, nil
}
