package prof

import "sort"

// FuncStat is one row of a hot-function table.
type FuncStat struct {
	Name string `json:"name"`
	// Flat is the value attributed to samples whose leaf frame is this
	// function; Cum counts every sample the function appears anywhere in.
	Flat    int64   `json:"flat"`
	FlatPct float64 `json:"flat_pct"`
	Cum     int64   `json:"cum"`
	CumPct  float64 `json:"cum_pct"`
}

// Table is the bounded aggregation of one profile: the top-N functions by
// flat and by cumulative value (union of the two), plus totals.
type Table struct {
	Kind    string `json:"kind"`
	Unit    string `json:"unit"`
	Samples int    `json:"samples"`
	Total   int64  `json:"total"`
	// DurationSeconds is the profile's own wall-clock window (CPU profiles
	// only; zero for snapshots).
	DurationSeconds float64    `json:"duration_seconds,omitempty"`
	Funcs           []FuncStat `json:"funcs"`
}

// ValueIndex picks which sample value column to aggregate: the first sample
// type whose name matches one of preferred, else the last column (pprof's
// conventional default).
func (p *Profile) ValueIndex(preferred ...string) int {
	for _, want := range preferred {
		for i, st := range p.SampleTypes {
			if st.Type == want {
				return i
			}
		}
	}
	return len(p.SampleTypes) - 1
}

// defaultValueType maps a capture kind to the sample-type preference used
// when folding its profile.
func defaultValueType(kind string) []string {
	switch kind {
	case "cpu":
		return []string{"cpu"}
	case "heap":
		return []string{"inuse_space"}
	case "mutex", "block":
		return []string{"delay"}
	case "goroutine":
		return []string{"goroutine"}
	default:
		return nil
	}
}

// Aggregate folds a decoded profile into a hot-function table over the given
// value column, keeping the union of the top-N rows by flat and by cum.
// topN <= 0 keeps every function.
func Aggregate(p *Profile, kind string, valueIndex, topN int) Table {
	t := Table{Kind: kind, DurationSeconds: float64(p.DurationNanos) / 1e9}
	if valueIndex < 0 || valueIndex >= len(p.SampleTypes) {
		return t
	}
	t.Unit = p.SampleTypes[valueIndex].Unit

	type stat struct{ flat, cum int64 }
	stats := make(map[string]*stat)
	get := func(name string) *stat {
		s := stats[name]
		if s == nil {
			s = &stat{}
			stats[name] = s
		}
		return s
	}
	// seen dedups functions within one sample so recursion doesn't multiply
	// cumulative attribution.
	seen := make(map[string]bool)
	for _, s := range p.Samples {
		v := s.Values[valueIndex]
		if v == 0 || len(s.LocationIDs) == 0 {
			continue
		}
		t.Samples++
		t.Total += v

		// Leaf frame: the innermost function of the first location.
		if loc := p.Locations[s.LocationIDs[0]]; loc != nil && len(loc.FunctionIDs) > 0 {
			if fn := p.Functions[loc.FunctionIDs[0]]; fn != nil && fn.Name != "" {
				get(fn.Name).flat += v
			}
		}
		clear(seen)
		for _, locID := range s.LocationIDs {
			loc := p.Locations[locID]
			if loc == nil {
				continue
			}
			for _, fnID := range loc.FunctionIDs {
				fn := p.Functions[fnID]
				if fn == nil || fn.Name == "" || seen[fn.Name] {
					continue
				}
				seen[fn.Name] = true
				get(fn.Name).cum += v
			}
		}
	}

	rows := make([]FuncStat, 0, len(stats))
	for name, s := range stats {
		rows = append(rows, FuncStat{Name: name, Flat: s.flat, Cum: s.cum})
	}
	if t.Total > 0 {
		for i := range rows {
			rows[i].FlatPct = 100 * float64(rows[i].Flat) / float64(t.Total)
			rows[i].CumPct = 100 * float64(rows[i].Cum) / float64(t.Total)
		}
	}
	t.Funcs = topUnion(rows, topN)
	return t
}

// topUnion keeps the union of the top-N rows by flat and by cum, sorted by
// flat desc (then cum desc, then name for determinism).
func topUnion(rows []FuncStat, topN int) []FuncStat {
	byFlat := func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Flat != b.Flat {
			return a.Flat > b.Flat
		}
		if a.Cum != b.Cum {
			return a.Cum > b.Cum
		}
		return a.Name < b.Name
	}
	sort.Slice(rows, byFlat)
	if topN <= 0 || len(rows) <= topN {
		return rows
	}
	keep := make(map[string]bool, 2*topN)
	for _, r := range rows[:topN] {
		keep[r.Name] = true
	}
	byCum := append([]FuncStat(nil), rows...)
	sort.Slice(byCum, func(i, j int) bool {
		a, b := byCum[i], byCum[j]
		if a.Cum != b.Cum {
			return a.Cum > b.Cum
		}
		if a.Flat != b.Flat {
			return a.Flat > b.Flat
		}
		return a.Name < b.Name
	})
	for _, r := range byCum[:topN] {
		keep[r.Name] = true
	}
	out := rows[:0]
	for _, r := range rows {
		if keep[r.Name] {
			out = append(out, r)
		}
	}
	return out
}
