package mamorl_test

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	mamorl "github.com/routeplanning/mamorl"
)

// sharedModel is trained once per test binary.
var sharedModel *mamorl.Model

func model(t *testing.T) *mamorl.Model {
	t.Helper()
	if sharedModel == nil {
		m, err := mamorl.Train(mamorl.TrainConfig{Seed: 7, SampleEpisodes: 3})
		if err != nil {
			t.Fatalf("Train: %v", err)
		}
		sharedModel = m
	}
	return sharedModel
}

func TestQuickstartFlow(t *testing.T) {
	g, err := mamorl.GenerateSyntheticGrid(mamorl.SyntheticConfig{
		Nodes: 200, Edges: 430, MaxOutDegree: 8, Seed: 1,
	})
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	sc, err := mamorl.NewScenario(g, 3, 1.2, 3, 3)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	res, err := mamorl.Run(sc, model(t).NewPlanner(1), mamorl.RunOptions{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Found {
		t.Fatalf("quickstart mission failed: %+v", res)
	}
	if res.Collisions != 0 {
		t.Errorf("collisions: %d", res.Collisions)
	}
}

func TestPartialKnowledgeFlow(t *testing.T) {
	g, err := mamorl.GenerateSyntheticGrid(mamorl.SyntheticConfig{
		Nodes: 200, Edges: 430, MaxOutDegree: 8, Seed: 2,
	})
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	sc, err := mamorl.NewScenario(g, 2, 1.2, 3, 3)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	d := g.Pos(sc.Dest)
	r := 3 * g.AvgEdgeWeight()
	region := mamorl.NewRect(
		mamorl.Point{X: d.X - r, Y: d.Y - r},
		mamorl.Point{X: d.X + r, Y: d.Y + r},
	)
	pk, err := model(t).NewPartialKnowledgePlanner(sc, region, 3)
	if err != nil {
		t.Fatalf("PK planner: %v", err)
	}
	res, err := mamorl.Run(sc, pk, mamorl.RunOptions{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Found {
		t.Fatalf("PK mission failed: %+v", res)
	}
}

func TestExactRefusesLargeInstance(t *testing.T) {
	g, err := mamorl.GenerateSyntheticGrid(mamorl.SyntheticConfig{
		Nodes: 400, Edges: 846, MaxOutDegree: 9, Seed: 3,
	})
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	sc, err := mamorl.NewScenario(g, 3, 1.2, 5, 3)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	_, err = mamorl.NewExactPlanner(sc, mamorl.ExactConfig{})
	if !errors.Is(err, mamorl.ErrMemoryBudget) {
		t.Fatalf("err = %v, want ErrMemoryBudget", err)
	}
	pb, qb := mamorl.ExactTableBytes(g, sc.Team)
	if pb <= 0 || qb <= float64(1<<40) {
		t.Errorf("table bytes: P=%v Q=%v (expected Q in the TB+ range)", pb, qb)
	}
}

func TestBaselinesViaFacade(t *testing.T) {
	g, err := mamorl.GenerateSyntheticGrid(mamorl.SyntheticConfig{
		Nodes: 120, Edges: 260, MaxOutDegree: 7, Seed: 4,
	})
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	sc, err := mamorl.NewScenario(g, 2, 1.2, 3, 3)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	for _, p := range []mamorl.Planner{
		mamorl.NewBaseline1(1), mamorl.NewRandomWalk(1),
	} {
		sc2 := sc
		sc2.MaxSteps = 50000
		res, err := mamorl.Run(sc2, p, mamorl.RunOptions{})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if !res.Found {
			t.Errorf("%s did not finish: %+v", p.Name(), res)
		}
	}
}

func TestShortestPathAndSpeeds(t *testing.T) {
	g, err := mamorl.GenerateSyntheticGrid(mamorl.SyntheticConfig{
		Nodes: 80, Edges: 170, MaxOutDegree: 7, Seed: 5,
	})
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	path, dist, err := mamorl.ShortestPath(g, 0, 79)
	if err != nil {
		t.Fatalf("ShortestPath: %v", err)
	}
	if len(path) < 2 || path[0] != 0 || path[len(path)-1] != 79 || dist <= 0 {
		t.Errorf("path %v dist %v", path, dist)
	}
	if s := mamorl.CruiseSpeed(2, 3); s != 2 {
		t.Errorf("CruiseSpeed = %d", s)
	}
	if r := mamorl.FuelRate(2); r < 4.27 || r > 4.28 {
		t.Errorf("FuelRate(2) = %v", r)
	}
}

func TestGridRoundTripViaFacade(t *testing.T) {
	g, err := mamorl.GenerateSyntheticGrid(mamorl.SyntheticConfig{
		Name: "roundtrip", Nodes: 40, Edges: 80, MaxOutDegree: 6, Seed: 6,
	})
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	path := t.TempDir() + "/g.json"
	if err := mamorl.SaveGrid(path, g); err != nil {
		t.Fatalf("SaveGrid: %v", err)
	}
	g2, err := mamorl.LoadGrid(path)
	if err != nil {
		t.Fatalf("LoadGrid: %v", err)
	}
	if g2.NumNodes() != 40 || g2.Name() != "roundtrip" {
		t.Errorf("roundtrip: %v", g2.Stats())
	}
}

func TestTMPLARServerViaFacade(t *testing.T) {
	srv, err := mamorl.NewTMPLARServer(11)
	if err != nil {
		t.Fatalf("NewTMPLARServer: %v", err)
	}
	g, err := mamorl.GenerateSyntheticGrid(mamorl.SyntheticConfig{
		Name: "area", Nodes: 100, Edges: 210, MaxOutDegree: 7, Seed: 7,
	})
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	srv.InstallGrid(g)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/api/grids")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "area") {
		t.Errorf("grid listing: %s", buf[:n])
	}
}

func TestNeuralPlannerViaFacade(t *testing.T) {
	m := model(t)
	if err := m.FitNeural(mamorl.NeuralTrainOptions{Epochs: 50, BatchSize: 256, LearningRate: 0.05}, 1); err != nil {
		t.Fatalf("FitNeural: %v", err)
	}
	g, err := mamorl.GenerateSyntheticGrid(mamorl.SyntheticConfig{
		Nodes: 100, Edges: 210, MaxOutDegree: 7, Seed: 8,
	})
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	sc, err := mamorl.NewScenario(g, 2, 1.2, 3, 3)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	res, err := mamorl.Run(sc, m.NewNeuralPlanner(2), mamorl.RunOptions{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Found {
		t.Errorf("NN planner failed: %+v", res)
	}
	if m.ModelBytes() <= 0 {
		t.Error("ModelBytes should be positive")
	}
}

func TestNeuralPlannerPanicsWithoutFit(t *testing.T) {
	m, err := mamorl.Train(mamorl.TrainConfig{Seed: 19, SampleEpisodes: 2})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic without FitNeural")
		}
	}()
	m.NewNeuralPlanner(1)
}

func TestWeatherViaFacade(t *testing.T) {
	g, err := mamorl.GenerateSyntheticGrid(mamorl.SyntheticConfig{
		Nodes: 120, Edges: 260, MaxOutDegree: 7, Seed: 9,
	})
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	sc, err := mamorl.NewScenario(g, 2, 1.2, 3, 3)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	m := model(t)

	calm := sc
	calm.Weather = mamorl.CalmWeather{}
	rc, err := mamorl.Run(calm, m.NewPlanner(5), mamorl.RunOptions{})
	if err != nil {
		t.Fatalf("calm run: %v", err)
	}

	stormy := sc
	bounds := g.Bounds()
	stormy.Weather = mamorl.Storms{Cells: []mamorl.StormCell{{
		Center: bounds.Center(), Radius: bounds.Width(), Slowdown: 0.5,
	}}}
	rs, err := mamorl.Run(stormy, m.NewPlanner(5), mamorl.RunOptions{})
	if err != nil {
		t.Fatalf("stormy run: %v", err)
	}
	if !rc.Found || !rs.Found {
		t.Fatalf("missions failed: calm=%v stormy=%v", rc.Found, rs.Found)
	}
	// A basin-wide half-speed storm must cost clearly more time and fuel.
	if rs.TTotal <= rc.TTotal || rs.FTotal <= rc.FTotal {
		t.Errorf("storm should cost more: calm T=%.1f/F=%.1f vs stormy T=%.1f/F=%.1f",
			rc.TTotal, rc.FTotal, rs.TTotal, rs.FTotal)
	}
}
