// Fleet service: run the TMPLAR-style planning service in-process and
// query it over HTTP, the way the Navy's TMPLAR front-end integrates
// MaMoRL as a JSON back-end (Section 4.7 of the paper).
//
// The example starts the service on a local port, installs an operations
// area grid, requests a global-view plan for a three-asset mission and a
// local-view plan for a single asset, and prints the returned routes.
//
//	go run ./examples/fleet-service
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	mamorl "github.com/routeplanning/mamorl"
)

func main() {
	fmt.Println("training the planning model and starting the service...")
	srv, err := mamorl.NewTMPLARServer(3)
	if err != nil {
		log.Fatal(err)
	}
	g, err := mamorl.GenerateSyntheticGrid(mamorl.SyntheticConfig{
		Name: "ops-area", Nodes: 300, Edges: 640, MaxOutDegree: 8, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv.InstallGrid(g)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, srv.Handler()); err != nil {
			log.Printf("server stopped: %v", err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("service listening at %s\n\n", base)

	// Global view: plan the whole mission.
	dest := mamorl.FarthestNode(g, []mamorl.NodeID{0, 100, 200})
	globalReq := map[string]interface{}{
		"grid": "ops-area",
		"assets": []map[string]interface{}{
			{"source": 0, "sensing_radius": 2.0 * g.AvgEdgeWeight(), "max_speed": 3},
			{"source": 100, "sensing_radius": 2.0 * g.AvgEdgeWeight(), "max_speed": 3},
			{"source": 200, "sensing_radius": 2.0 * g.AvgEdgeWeight(), "max_speed": 2},
		},
		"destination": dest,
		"comm_every":  3,
		"seed":        1,
	}
	var global struct {
		Found  bool    `json:"found"`
		Steps  int     `json:"steps"`
		TTotal float64 `json:"t_total"`
		FTotal float64 `json:"f_total"`
		Routes []struct {
			Asset int     `json:"asset"`
			Time  float64 `json:"time"`
			Fuel  float64 `json:"fuel"`
			Legs  []struct {
				From int32 `json:"from"`
				To   int32 `json:"to"`
				Wait bool  `json:"wait"`
			} `json:"legs"`
		} `json:"routes"`
	}
	post(base+"/api/plan", globalReq, &global)
	fmt.Printf("global view: found=%v in %d epochs, T_total=%.1f F_total=%.1f\n",
		global.Found, global.Steps, global.TTotal, global.FTotal)
	for _, r := range global.Routes {
		moves, waits := 0, 0
		for _, leg := range r.Legs {
			if leg.Wait {
				waits++
			} else {
				moves++
			}
		}
		fmt.Printf("  asset %d: %d moves, %d waits, time %.1f, fuel %.1f\n",
			r.Asset, moves, waits, r.Time, r.Fuel)
	}

	// Local view: a single asset plans on its own.
	localReq := map[string]interface{}{
		"grid":        "ops-area",
		"asset":       map[string]interface{}{"source": 42, "sensing_radius": 2.0 * g.AvgEdgeWeight(), "max_speed": 3},
		"destination": dest,
		"seed":        2,
	}
	var local struct {
		Found  bool    `json:"found"`
		Steps  int     `json:"steps"`
		TTotal float64 `json:"t_total"`
	}
	post(base+"/api/plan/asset", localReq, &local)
	fmt.Printf("\nlocal view (single asset): found=%v in %d epochs, T_total=%.1f\n",
		local.Found, local.Steps, local.TTotal)
}

func post(url string, body interface{}, out interface{}) {
	data, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		log.Fatalf("POST %s: %d %s", url, resp.StatusCode, buf.String())
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
