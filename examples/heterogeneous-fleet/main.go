// Heterogeneous fleet: assets with different sensing radii and speed
// limits cooperating in one mission.
//
// The paper's asset quintuple ⟨r_i, sp_i, source_i, cur_i, d_i⟩ is
// per-asset, and its toy example already mixes capabilities (Asset1: r=2,
// sp=3; Asset2: r=3, sp=2). This example builds a realistic mixed team —
// a fast patrol boat with a short sensor horizon, a maritime patrol
// aircraft surrogate with a wide sensor but moderate speed, and a slow
// auxiliary vessel — and compares it against a homogeneous fleet with the
// same total capability budget.
//
//	go run ./examples/heterogeneous-fleet
package main

import (
	"fmt"
	"log"

	mamorl "github.com/routeplanning/mamorl"
)

func main() {
	g, err := mamorl.GenerateSyntheticGrid(mamorl.SyntheticConfig{
		Nodes: 400, Edges: 846, MaxOutDegree: 9, Seed: 17,
	})
	if err != nil {
		log.Fatal(err)
	}
	avg := g.AvgEdgeWeight()
	fmt.Printf("grid: %v\n", g.Stats())

	fmt.Println("training Approx-MaMoRL (features are normalized, so one model serves any fleet mix)...")
	model, err := mamorl.Train(mamorl.TrainConfig{Seed: 17})
	if err != nil {
		log.Fatal(err)
	}

	sources := []mamorl.NodeID{0, 130, 260}
	dest := mamorl.FarthestNode(g, sources)

	// Mixed fleet: per-asset radii and speeds.
	mixed := mamorl.Team{
		{ID: 0, SensingRadius: 0.9 * avg, MaxSpeed: 5, Source: sources[0]}, // patrol boat: fast, short sensors
		{ID: 1, SensingRadius: 2.5 * avg, MaxSpeed: 3, Source: sources[1]}, // MPA surrogate: wide sensors
		{ID: 2, SensingRadius: 1.2 * avg, MaxSpeed: 2, Source: sources[2]}, // auxiliary: slow
	}
	// Homogeneous fleet with comparable average capability.
	uniform := mamorl.NewTeam(sources, 1.5*avg, 3)

	for _, tc := range []struct {
		name string
		team mamorl.Team
	}{
		{"heterogeneous", mixed},
		{"homogeneous", uniform},
	} {
		sc := mamorl.Scenario{Grid: g, Team: tc.team, Dest: dest, CommEvery: 3}
		res, err := mamorl.Run(sc, model.NewPlanner(3), mamorl.RunOptions{})
		if err != nil {
			log.Fatalf("%s: %v", tc.name, err)
		}
		fmt.Printf("%-14s %v\n", tc.name+":", res)
	}

	fmt.Println("\nper-asset roles in the mixed fleet (one representative run):")
	sc := mamorl.Scenario{Grid: g, Team: mixed, Dest: dest, CommEvery: 3}
	// Record a trace through the public OnStep hook.
	counts := make([]int, len(mixed))
	waits := make([]int, len(mixed))
	planner := model.NewPlanner(3)
	res, err := mamorl.Run(sc, planner, mamorl.RunOptions{
		OnStep: func(m *mamorl.Mission, acts []mamorl.Action) {
			for i, a := range acts {
				counts[i]++
				if a.IsWait() {
					waits[i]++
				}
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	names := []string{"patrol boat", "MPA surrogate", "auxiliary"}
	for i := range mixed {
		fmt.Printf("  %-14s r=%.1f sp=%d: %3d decisions, %2d waits\n",
			names[i], mixed[i].SensingRadius, mixed[i].MaxSpeed, counts[i], waits[i])
	}
	fmt.Printf("mission: %v\n", res)
}
