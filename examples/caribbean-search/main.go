// Caribbean search and rescue: every implemented planner on the paper's
// Caribbean dataset.
//
// A drifting vessel (the destination) is lost somewhere in the Caribbean.
// A mixed team of three search assets sails from known ports and must find
// it, minimizing fuel and the time to discovery. The example compares
// Approx-MaMoRL, its partial-knowledge variant (the search region is known
// from the vessel's last radio contact), and the baselines — the Table 6
// comparison on real-world-shaped data.
//
//	go run ./examples/caribbean-search
package main

import (
	"fmt"
	"log"

	mamorl "github.com/routeplanning/mamorl"
)

// exclusionZone closes a patch of ocean around a point far from both the
// team and the destination, keeping the scenario valid.
func exclusionZone(g *mamorl.Grid, sc mamorl.Scenario) []mamorl.NodeID {
	keep := map[mamorl.NodeID]bool{sc.Dest: true}
	for _, a := range sc.Team {
		keep[a.Source] = true
	}
	// Center the zone between the first source and the destination.
	mid := mamorl.Point{
		X: (g.Pos(sc.Team[0].Source).X + g.Pos(sc.Dest).X) / 2,
		Y: (g.Pos(sc.Team[0].Source).Y + g.Pos(sc.Dest).Y) / 2,
	}
	center := g.NearestNode(mid)
	radius := 1.5 * g.AvgEdgeWeight()
	var zone []mamorl.NodeID
	for _, v := range g.WithinRadius(center, radius) {
		if !keep[v] {
			zone = append(zone, v)
		}
	}
	// The zone must not disconnect anything; the caller validates via the
	// scenario. Shrink it if validation would fail.
	test := sc
	test.Obstacles = zone
	if err := test.Validate(); err != nil {
		return nil // fall back to open ocean rather than crash the demo
	}
	return zone
}

func main() {
	fmt.Println("building the Caribbean grid (710 nodes, 1684 edges — Table 3)...")
	g, err := mamorl.CaribbeanGrid(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid: %v\n", g.Stats())

	fmt.Println("training Approx-MaMoRL...")
	model, err := mamorl.Train(mamorl.TrainConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// Three assets from spread-out ports; sensing radius of 1.5 average
	// edge lengths (tens of nautical miles); location exchange every 3
	// decision epochs.
	sc, err := mamorl.NewScenario(g, 3, 1.5, 3, 3)
	if err != nil {
		log.Fatal(err)
	}

	// An exclusion zone (reef / restricted waters): no asset may enter.
	// Pick a patch of nodes away from the sources and destination.
	sc.Obstacles = exclusionZone(g, sc)
	fmt.Printf("exclusion zone: %d nodes closed to navigation\n", len(sc.Obstacles))
	fmt.Printf("lost vessel at node %d %v (unknown to the searchers)\n\n", sc.Dest, g.Pos(sc.Dest))

	// The partial-knowledge variant knows the vessel is inside a box around
	// its last reported position.
	d := g.Pos(sc.Dest)
	region := mamorl.NewRect(
		mamorl.Point{X: d.X - 3, Y: d.Y - 3},
		mamorl.Point{X: d.X + 3, Y: d.Y + 3},
	)
	pk, err := model.NewPartialKnowledgePlanner(sc, region, 7)
	if err != nil {
		log.Fatal(err)
	}

	planners := []struct {
		name string
		p    mamorl.Planner
		opts mamorl.RunOptions
	}{
		{"Approx-MaMoRL", model.NewPlanner(7), mamorl.RunOptions{}},
		{"Approx-MaMoRL + partial knowledge", pk, mamorl.RunOptions{}},
		{"Baseline-1 (round robin)", mamorl.NewBaseline1(7), mamorl.RunOptions{}},
		{"Baseline-2 (independent)", mamorl.NewBaseline2(7), mamorl.RunOptions{Collision: mamorl.AbortOnCollision}},
		{"Random walk", mamorl.NewRandomWalk(7), mamorl.RunOptions{}},
	}

	fmt.Printf("%-36s %10s %12s %8s %s\n", "planner", "T_total", "F_total", "steps", "outcome")
	for _, entry := range planners {
		sc2 := sc
		if entry.name == "Random walk" {
			sc2.MaxSteps = g.NumNodes() * 150 // random walks need room
		}
		res, err := mamorl.Run(sc2, entry.p, entry.opts)
		if err != nil {
			log.Fatalf("%s: %v", entry.name, err)
		}
		outcome := "found"
		if res.Aborted {
			outcome = "ABORTED (collision)"
		} else if !res.Found {
			outcome = "not found"
		}
		fmt.Printf("%-36s %10.1f %12.1f %8d %s\n", entry.name, res.TTotal, res.FTotal, res.Steps, outcome)
	}
}
