// Transfer learning: a policy trained in one basin plans in another
// (Figure 8 of the paper).
//
// The example trains one Approx-MaMoRL model on the Caribbean grid and one
// on a second basin, then cross-evaluates: each model plans missions on
// both basins. The paper's finding — and this reproduction's — is that the
// transferred model performs close to the natively trained one, because the
// learned weights range over normalized structural features (degree,
// unexplored fraction, speeds) rather than grid-specific coordinates.
//
//	go run ./examples/transfer-learning
package main

import (
	"context"
	"fmt"
	"log"

	mamorl "github.com/routeplanning/mamorl"
	"github.com/routeplanning/mamorl/internal/experiments"
)

func main() {
	fmt.Println("building the Caribbean grid (710 nodes)...")
	carib, err := mamorl.CaribbeanGrid(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("building the North America Shore grid (3291 nodes)...")
	naShore, err := mamorl.NorthAmericaShoreGrid(7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("training a model per basin (each on a 50-node subregion) and cross-evaluating...")
	res, err := experiments.RunFigure8(context.Background(), carib, naShore,
		experiments.Figure8Options{Runs: 5, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatFigure8(res))

	// Headline: transferred vs native on each basin.
	byKey := map[string]experiments.TransferCell{}
	for _, c := range res.Cells {
		byKey[c.TrainedOn+">"+c.EvaluatedOn] = c
	}
	for _, basin := range []string{"caribbean", "north-america-shore"} {
		var native, transferred experiments.TransferCell
		for key, c := range byKey {
			if c.EvaluatedOn != basin {
				continue
			}
			if c.TrainedOn == basin {
				native = c
			} else {
				transferred = c
			}
			_ = key
		}
		fmt.Printf("\n%s: native T=%.1f vs transferred T=%.1f (%.0f%% gap)\n",
			basin, native.Stats.MeanT(), transferred.Stats.MeanT(),
			100*(transferred.Stats.MeanT()-native.Stats.MeanT())/native.Stats.MeanT())
	}
}
