// Quickstart: plan a cooperative search mission with Approx-MaMoRL.
//
// Four assets search a 400-node synthetic maritime grid for a destination
// at an unknown location, communicating every 3 decision epochs. The
// example trains the deployable model (Section 4.2 of the paper: exact
// MaMoRL on a small grid supplies the regression samples), runs the
// mission, and prints the outcome next to the Baseline-1 comparison.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	mamorl "github.com/routeplanning/mamorl"
)

func main() {
	// A synthetic grid with the paper's Table 4 shape.
	g, err := mamorl.GenerateSyntheticGrid(mamorl.SyntheticConfig{
		Nodes: 400, Edges: 846, MaxOutDegree: 9, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid: %v\n", g.Stats())

	// Train Approx-MaMoRL: exact MaMoRL runs on a 50-node training grid and
	// its Teammate-Module probabilities and rewards are distilled into a
	// few dozen linear-regression weights.
	fmt.Println("training Approx-MaMoRL...")
	model, err := mamorl.Train(mamorl.TrainConfig{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model size: %d bytes (the exact solver would need dense tables instead)\n", model.ModelBytes())

	// Four assets, sensing radius 1.2x the average edge length, max speed
	// 3, exchanging locations every 3 epochs. The destination is placed at
	// the node farthest from the team and hidden from it.
	sc, err := mamorl.NewScenario(g, 4, 1.2, 3, 3)
	if err != nil {
		log.Fatal(err)
	}
	pBytes, qBytes := mamorl.ExactTableBytes(g, sc.Team)
	fmt.Printf("exact MaMoRL would need %.3g GB of P tables and %.3g TB of Q tables here\n",
		pBytes/(1<<30), qBytes/(1<<40))

	res, err := mamorl.Run(sc, model.NewPlanner(1), mamorl.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Approx-MaMoRL: %v\n", res)

	// The round-robin baseline on the same mission: lower fuel, much longer
	// makespan — the trade-off the paper's Table 6 documents.
	resB1, err := mamorl.Run(sc, mamorl.NewBaseline1(1), mamorl.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Baseline-1:    %v\n", resB1)

	if res.TTotal < resB1.TTotal {
		fmt.Printf("Approx-MaMoRL completed the mission %.1fx faster.\n", resB1.TTotal/res.TTotal)
	}
}
