// Storm season: the same search mission executed in calm seas, against an
// ocean gyre, and through a drifting storm front.
//
// The paper's deployment target (TMPLAR, Section 4.7) plans routes "in a
// dynamic weather-impacted environment"; this example exercises that
// substrate. Planners command nominal speeds — the environment delivers
// real ones — so adverse weather shows up as extra mission time AND fuel
// without any planner changes.
//
//	go run ./examples/storm-season
package main

import (
	"fmt"
	"log"

	mamorl "github.com/routeplanning/mamorl"
)

func main() {
	g, err := mamorl.GenerateSyntheticGrid(mamorl.SyntheticConfig{
		Nodes: 300, Edges: 640, MaxOutDegree: 8, Seed: 23,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid: %v\n", g.Stats())

	fmt.Println("training Approx-MaMoRL...")
	model, err := mamorl.Train(mamorl.TrainConfig{Seed: 23})
	if err != nil {
		log.Fatal(err)
	}

	base, err := mamorl.NewScenario(g, 3, 1.3, 3, 3)
	if err != nil {
		log.Fatal(err)
	}
	bounds := g.Bounds()
	center := bounds.Center()

	conditions := []struct {
		name  string
		field mamorl.WeatherField
	}{
		{"calm seas", mamorl.CalmWeather{}},
		{"basin gyre (0.4 peak current)", mamorl.Gyre{
			Center: center, Radius: bounds.Width() / 3, Strength: 0.4,
		}},
		{"drifting storm front", mamorl.Storms{Cells: []mamorl.StormCell{
			{
				Center:   mamorl.Point{X: bounds.MinX, Y: center.Y},
				Drift:    mamorl.Point{X: bounds.Width() / 400, Y: 0},
				Radius:   bounds.Width() / 4,
				Slowdown: 0.35,
			},
		}}},
		{"gyre + storm", mamorl.ComposeWeather{
			mamorl.Gyre{Center: center, Radius: bounds.Width() / 3, Strength: 0.4},
			mamorl.Storms{Cells: []mamorl.StormCell{{
				Center: center, Radius: bounds.Width() / 5, Slowdown: 0.5,
			}}},
		}},
	}

	fmt.Printf("\n%-32s %10s %12s %8s\n", "conditions", "T_total", "F_total", "steps")
	for _, c := range conditions {
		sc := base
		sc.Weather = c.field
		res, err := mamorl.Run(sc, model.NewPlanner(4), mamorl.RunOptions{})
		if err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		status := ""
		if !res.Found {
			status = "  (not found)"
		}
		fmt.Printf("%-32s %10.1f %12.1f %8d%s\n", c.name, res.TTotal, res.FTotal, res.Steps, status)
	}
	fmt.Println("\nThe same routes cost more time and fuel as conditions worsen;")
	fmt.Println("the storm's drift also shifts WHERE the penalty lands over the mission.")
}
