module github.com/routeplanning/mamorl

go 1.22
