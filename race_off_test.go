//go:build !race

package mamorl_test

// raceEnabled mirrors the race detector build tag: the detector makes
// sync.Pool randomly bypass its cache, which perturbs the allocation counts
// the alloc regression tests pin.
const raceEnabled = false
