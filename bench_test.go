// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md §4 for the experiment index). Each benchmark runs the
// corresponding experiment driver at a reduced scale so that the full
// `go test -bench=. -benchmem` completes in minutes; pass
// `-args -paperscale` for the paper's full 10-run protocol.
//
// Reported custom metrics carry the reproduced quantities (mean T_total,
// F_total, relative improvements, table bytes) so a bench run doubles as a
// results table.
package mamorl_test

import (
	"context"
	"flag"
	"runtime"
	"sync"
	"testing"

	"github.com/routeplanning/mamorl/internal/approx"
	"github.com/routeplanning/mamorl/internal/catalog"
	"github.com/routeplanning/mamorl/internal/core"
	"github.com/routeplanning/mamorl/internal/experiments"
	"github.com/routeplanning/mamorl/internal/graphalg"
	"github.com/routeplanning/mamorl/internal/grid"
	"github.com/routeplanning/mamorl/internal/neural"
	"github.com/routeplanning/mamorl/internal/rewardfn"
	"github.com/routeplanning/mamorl/internal/sim"
	"github.com/routeplanning/mamorl/internal/vessel"
	"github.com/routeplanning/mamorl/internal/weather"
)

var paperScale = flag.Bool("paperscale", false, "run benches at the paper's full 10-run protocol")

// benchParallel is the run budget handed to the experiment drivers that
// report objective metrics only (Table 6, Figure 4/8, ablation). The sweep
// benches (Figure 5/6/7) stay serial: their CPU-timing columns are only
// meaningful without contention.
var benchParallel = flag.Int("benchparallel", 0, "Params.Parallel for the objective-metric benches; 0 = GOMAXPROCS")

func parallelism() int {
	if *benchParallel > 0 {
		return *benchParallel
	}
	return runtime.GOMAXPROCS(0)
}

// benchHarness is shared across benchmarks (training the sample source once).
var (
	benchOnce    sync.Once
	benchH       *experiments.Harness
	benchHarnErr error
)

func harness(b *testing.B) *experiments.Harness {
	b.Helper()
	benchOnce.Do(func() {
		benchH, benchHarnErr = experiments.NewHarness(approx.TrainConfig{Seed: 1})
	})
	if benchHarnErr != nil {
		b.Fatalf("harness: %v", benchHarnErr)
	}
	return benchH
}

func benchParams() experiments.Params {
	p := experiments.DefaultParams()
	if !*paperScale {
		p = p.Quick()
		p.Nodes, p.Edges, p.MaxOutDegree = 200, 430, 8
		p.Assets, p.MaxSpeed = 3, 3
	}
	return p
}

// BenchmarkTable2ToyExample regenerates Table 2: time and fuel per speed
// for the toy example's two assets.
func BenchmarkTable2ToyExample(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, w := range []float64{2.0, 2.24} {
			for s := 1; s <= 3; s++ {
				sink += vessel.MoveTime(w, float64(s)) + vessel.MoveFuel(w, float64(s))
			}
		}
	}
	b.ReportMetric(vessel.MoveFuel(2, 2), "asset1_speed2_fuel")
	b.ReportMetric(vessel.MoveTime(2.24, 2), "asset2_speed2_time")
	_ = sink
}

// BenchmarkTable3Datasets regenerates the Caribbean mesh (and, at paper
// scale, the North America Shore and Atlantic meshes) and reports |V|/|E|.
func BenchmarkTable3Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := grid.CaribbeanGrid(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if g.NumNodes() != 710 || g.NumEdges() != 1684 {
			b.Fatalf("caribbean size drifted: %v", g.Stats())
		}
	}
	if *paperScale {
		na, err := grid.NorthAmericaShoreGrid(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(na.NumNodes()), "na_shore_nodes")
		atl, err := grid.AtlanticGrid(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(atl.NumNodes()), "atlantic_nodes")
	}
	b.ReportMetric(710, "caribbean_nodes")
	b.ReportMetric(1684, "caribbean_edges")
}

// BenchmarkTable5NNTraining trains the Table 5 network (2 layers: 5 ReLU +
// 1 linear) on the pipeline's LM samples.
func BenchmarkTable5NNTraining(b *testing.B) {
	h := harness(b)
	opts := neural.TrainOptions{Epochs: 50, BatchSize: 256, LearningRate: 0.05}
	if *paperScale {
		opts = neural.TrainOptions{} // batch 1000, 10000 epochs
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := approx.FitNeural(h.Pipe.Data, opts, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6Comparison runs the full algorithm comparison: all six
// algorithms on the four scenario blocks, including the exact solver where
// the memory budget admits it.
func BenchmarkTable6Comparison(b *testing.B) {
	benchTable6(b, parallelism())
}

// BenchmarkTable6ComparisonSerial is the same workload with the executor
// budget pinned to 1; the ns/op ratio against BenchmarkTable6Comparison is
// the parallel speedup (the cells and PerRun outcomes are byte-identical
// either way — see internal/experiments/executor_test.go).
func BenchmarkTable6ComparisonSerial(b *testing.B) {
	benchTable6(b, 1)
}

func benchTable6(b *testing.B, parallel int) {
	h := harness(b)
	p := experiments.DefaultParams()
	if !*paperScale {
		p = p.Quick()
	}
	p.Parallel = parallel
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := h.RunTable6(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		// Surface the headline cells as metrics.
		for _, r := range rows {
			if r.Scenario == "|V|=400 |N|=2 Dmax=6" && !r.Stats.NA {
				switch r.Algorithm {
				case experiments.AlgoMaMoRL:
					b.ReportMetric(r.Stats.MeanT(), "exact_T_v400")
				case experiments.AlgoApprox:
					b.ReportMetric(r.Stats.MeanT(), "approx_T_v400")
				}
			}
		}
	}
}

// BenchmarkFigure3FunctionApprox compares linear vs neural training time
// and mission quality.
func BenchmarkFigure3FunctionApprox(b *testing.B) {
	h := harness(b)
	p := benchParams()
	opts := neural.TrainOptions{Epochs: 100, BatchSize: 256, LearningRate: 0.05}
	if *paperScale {
		opts = neural.TrainOptions{}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := h.RunFigure3(context.Background(), p, opts, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedup, "nn_train_slowdown_x")
		b.ReportMetric(r.Linear.MeanT(), "linear_T")
		b.ReportMetric(r.Neural.MeanT(), "nn_T")
	}
}

// BenchmarkFigure4Pareto extracts the Pareto front over per-run outcomes of
// the four runnable planners.
func BenchmarkFigure4Pareto(b *testing.B) {
	h := harness(b)
	p := benchParams()
	p.Parallel = parallelism()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := h.RunFigure4(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		approxShare := r.FrontShare[experiments.AlgoApprox] + r.FrontShare[experiments.AlgoApproxPK]
		b.ReportMetric(float64(len(r.Front)), "front_size")
		b.ReportMetric(float64(approxShare), "approx_front_points")
	}
}

// BenchmarkFigure5Sweeps runs the seven Figure 5 parameter sweeps for
// Approx-MaMoRL and reports the headline relative improvement.
func BenchmarkFigure5Sweeps(b *testing.B) {
	h := harness(b)
	p := benchParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweeps, err := h.RunSweeps(context.Background(), experiments.AlgoApprox, p, !*paperScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sweeps[0].Points[0].RITimeVsB1, "ri_time_vs_b1_pct")
		b.ReportMetric(sweeps[0].Points[0].RIFuelVsB1, "ri_fuel_vs_b1_pct")
	}
}

// BenchmarkFigure6PartialKnowledge runs the same sweeps with the
// partial-knowledge planner.
func BenchmarkFigure6PartialKnowledge(b *testing.B) {
	h := harness(b)
	p := benchParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweeps, err := h.RunSweeps(context.Background(), experiments.AlgoApproxPK, p, !*paperScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sweeps[0].Points[0].RITimeVsB1, "pk_ri_time_vs_b1_pct")
	}
}

// BenchmarkFigure7RunningTime reports the per-run planning time of
// Approx-MaMoRL vs Baseline-1 (the same sweep machinery viewed through its
// timing columns).
func BenchmarkFigure7RunningTime(b *testing.B) {
	h := harness(b)
	p := benchParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweeps, err := h.RunSweeps(context.Background(), experiments.AlgoApprox, p, !*paperScale)
		if err != nil {
			b.Fatal(err)
		}
		last := sweeps[0].Points[len(sweeps[0].Points)-1]
		b.ReportMetric(float64(last.SubjectCPU.Microseconds()), "approx_plan_us")
		b.ReportMetric(float64(last.B1CPU.Microseconds()), "baseline1_plan_us")
	}
}

// BenchmarkFigure8Transfer cross-evaluates basin-trained models. The quick
// configuration pairs the Caribbean with a 500-node mesh; paper scale uses
// the full North America Shore grid.
func BenchmarkFigure8Transfer(b *testing.B) {
	carib, err := grid.CaribbeanGrid(5)
	if err != nil {
		b.Fatal(err)
	}
	var partner *grid.Grid
	if *paperScale {
		partner, err = grid.NorthAmericaShoreGrid(5)
	} else {
		partner, err = grid.GenerateOceanMesh(grid.OceanMeshConfig{
			Name: "mini-shore", Region: carib.Bounds(), Nodes: 500, Edges: 1150, MaxOutDegree: 6, Seed: 9,
		})
	}
	if err != nil {
		b.Fatal(err)
	}
	runs := 3
	if *paperScale {
		runs = 10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFigure8(context.Background(), carib, partner, experiments.Figure8Options{Runs: runs, Seed: int64(i), Parallel: parallelism()})
		if err != nil {
			b.Fatal(err)
		}
		// Transfer gap on the Caribbean: transferred vs native mean T.
		var native, transferred float64
		for _, c := range r.Cells {
			if c.EvaluatedOn == "caribbean" {
				if c.TrainedOn == "caribbean" {
					native = c.Stats.MeanT()
				} else {
					transferred = c.Stats.MeanT()
				}
			}
		}
		if native > 0 {
			b.ReportMetric(100*(transferred-native)/native, "transfer_gap_pct")
		}
	}
}

// BenchmarkLemmaTableSizes evaluates the Lemma 1-2 dense-size formulas for
// Table 6's scenarios (the memory-bottleneck analysis).
func BenchmarkLemmaTableSizes(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, s := range [][3]int{{704, 7, 2}, {400, 9, 3}, {400, 6, 2}, {200, 9, 2}} {
			actions := sim.ActionCount(s[1], 5)
			sink += core.PTableBytes(s[0], s[2], actions, 5)
			sink += core.QTableBytes(s[0], s[2], actions, 5)
		}
	}
	b.ReportMetric(core.QTableBytes(704, 2, sim.ActionCount(7, 5), 5)/(1<<30), "v704_q_gb")
	b.ReportMetric(core.QTableBytes(400, 3, sim.ActionCount(9, 5), 5)/(1<<40), "v400n3_q_tb")
	_ = sink
}

// --- Micro-benchmarks on the core machinery ----------------------------------

// BenchmarkApproxDecide measures one planning decision of the deployed
// planner (the latency TMPLAR sees per asset per epoch).
func BenchmarkApproxDecide(b *testing.B) {
	h := harness(b)
	g, err := grid.GenerateSynthetic(grid.SyntheticConfig{Nodes: 400, Edges: 846, MaxOutDegree: 9, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	sc, err := approx.TrainingScenario(g, 4, 5, 1.2, 3)
	if err != nil {
		b.Fatal(err)
	}
	pl := approx.NewPlanner(h.Linear, h.Pipe.Extractor, 1)
	m, err := sim.NewMission(sc, sim.RunOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pl.Decide(m, i%len(sc.Team))
	}
}

// BenchmarkExactDecide measures one ASM decision of the exact solver.
func BenchmarkExactDecide(b *testing.B) {
	g, err := grid.GenerateSynthetic(grid.SyntheticConfig{Nodes: 100, Edges: 210, MaxOutDegree: 6, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	sc, err := approx.TrainingScenario(g, 2, 3, 1.2, 3)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := core.NewPlanner(sc, core.Config{Seed: 1}, rewardfn.DefaultWeights())
	if err != nil {
		b.Fatal(err)
	}
	m, err := sim.NewMission(sc, sim.RunOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pl.Decide(m, i%2)
	}
}

// BenchmarkDijkstraCaribbean measures shortest-path computation on the
// Caribbean mesh (the partial-knowledge transit planner's setup cost).
func BenchmarkDijkstraCaribbean(b *testing.B) {
	g, err := grid.CaribbeanGrid(5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = graphalg.Dijkstra(g, grid.NodeID(i%g.NumNodes()))
	}
}

// BenchmarkSensingQuery measures the WithinRadius spatial query issued by
// every asset at every epoch.
func BenchmarkSensingQuery(b *testing.B) {
	g, err := grid.CaribbeanGrid(5)
	if err != nil {
		b.Fatal(err)
	}
	r := 1.5 * g.AvgEdgeWeight()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.WithinRadius(grid.NodeID(i%g.NumNodes()), r)
	}
}

// BenchmarkAblation runs the deployment-mechanism ablation study: the full
// Approx-MaMoRL planner against variants with one mechanism disabled each
// (frontier fallback, Voronoi partitioning, right of way, stall watchdog,
// TMM blocking). Not in the paper — it quantifies the design choices
// DESIGN.md §2 documents.
func BenchmarkAblation(b *testing.B) {
	h := harness(b)
	p := benchParams()
	p.Assets = 6
	p.Parallel = parallelism()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := h.RunAblation(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Variant == "full" {
				b.ReportMetric(float64(r.FoundRuns)/float64(r.Runs), "full_found_rate")
			}
			if r.Variant == "no-frontier" {
				b.ReportMetric(float64(r.FoundRuns)/float64(r.Runs), "no_frontier_found_rate")
			}
		}
	}
}

// BenchmarkNavigatorStep measures one rendezvous transit decision.
func BenchmarkNavigatorStep(b *testing.B) {
	g, err := grid.GenerateSynthetic(grid.SyntheticConfig{Nodes: 400, Edges: 846, MaxOutDegree: 9, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	sc, err := approx.TrainingScenario(g, 3, 3, 1.2, 3)
	if err != nil {
		b.Fatal(err)
	}
	m, err := sim.NewMission(sc, sim.RunOptions{})
	if err != nil {
		b.Fatal(err)
	}
	nv := sim.NewNavigator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = nv.Step(m, i%3, sc.Dest)
	}
}

// BenchmarkWeatherFields measures environmental field evaluation (issued
// once per asset move).
func BenchmarkWeatherFields(b *testing.B) {
	g, err := grid.GenerateSynthetic(grid.SyntheticConfig{Nodes: 200, Edges: 430, MaxOutDegree: 8, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	bounds := g.Bounds()
	field := weather.Compose{
		weather.Gyre{Center: bounds.Center(), Radius: bounds.Width() / 3, Strength: 0.4},
		weather.Storms{Cells: []weather.StormCell{
			{Center: bounds.Center(), Radius: bounds.Width() / 4, Slowdown: 0.4},
		}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := grid.NodeID(i % g.NumNodes())
		e := g.Neighbors(v)[0]
		_ = field.SpeedFactor(g, v, e.To, float64(i))
	}
}

// BenchmarkMissionStep measures one full simulator epoch (3 assets moving,
// sensing, communicating).
func BenchmarkMissionStep(b *testing.B) {
	g, err := grid.GenerateSynthetic(grid.SyntheticConfig{Nodes: 400, Edges: 846, MaxOutDegree: 9, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	sc, err := approx.TrainingScenario(g, 3, 3, 1.2, 3)
	if err != nil {
		b.Fatal(err)
	}
	sc.MaxSteps = 1 << 30
	m, err := sim.NewMission(sc, sim.RunOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Done() {
			b.StopTimer()
			m, err = sim.NewMission(sc, sim.RunOptions{})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		acts := make([]sim.Action, 3)
		for j := range acts {
			legal := m.LegalActionsFor(j)
			acts[j] = legal[i%len(legal)]
		}
		if _, err := m.ExecuteStep(acts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCatalogDecide measures one Decide served through the planner
// catalog. The hot case is the steady state of a resident tenant: Acquire is
// a map hit plus an LRU touch, and Do pays the planner reset. The cold case
// alternates two keys through a capacity-1 catalog, so every Acquire misses,
// loads, and evicts — the worst-case churn of an oversubscribed working set.
func BenchmarkCatalogDecide(b *testing.B) {
	h := harness(b)
	g, err := grid.GenerateSynthetic(grid.SyntheticConfig{Nodes: 400, Edges: 846, MaxOutDegree: 9, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	sc, err := approx.TrainingScenario(g, 4, 5, 1.2, 3)
	if err != nil {
		b.Fatal(err)
	}
	m, err := sim.NewMission(sc, sim.RunOptions{})
	if err != nil {
		b.Fatal(err)
	}
	loader := func(context.Context, string) (*catalog.ModelArtifact, error) {
		return &catalog.ModelArtifact{Model: h.Linear, Ext: h.Pipe.Extractor}, nil
	}
	ctx := context.Background()
	decideVia := func(b *testing.B, cat *catalog.Catalog, key catalog.Key, i int) {
		ent, err := cat.Acquire(ctx, key)
		if err != nil {
			b.Fatal(err)
		}
		defer ent.Release()
		if err := ent.Do(ctx, 1, func(_ context.Context, pl *approx.Planner) error {
			_ = pl.Decide(m, i%len(sc.Team))
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("hot", func(b *testing.B) {
		cat := catalog.New(catalog.Options{LoadModel: loader})
		defer cat.Close()
		cat.InstallGrid("bench", g)
		decideVia(b, cat, catalog.Key{Grid: "bench"}, 0) // warm the entry
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			decideVia(b, cat, catalog.Key{Grid: "bench"}, i)
		}
	})
	b.Run("cold", func(b *testing.B) {
		cat := catalog.New(catalog.Options{Capacity: 1, LoadModel: loader})
		defer cat.Close()
		cat.InstallGrid("churn-a", g)
		cat.InstallGrid("churn-b", g)
		keys := []catalog.Key{{Grid: "churn-a"}, {Grid: "churn-b"}}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			decideVia(b, cat, keys[i%2], i)
		}
	})
}
