// Command tmplard serves the TMPLAR-style JSON planning API (Section 4.7 of
// the paper): a back-end service that front-ends query for cooperative
// multi-asset route plans.
//
// Usage:
//
//	tmplard -addr :8080 -grids caribbean.json,ops.json
//	tmplard -addr :8080 -preset caribbean -plan-timeout 10s
//
// Endpoints:
//
//	GET  /healthz          liveness
//	GET  /metrics          metrics (Prometheus text; ?format=json for JSON)
//	GET  /api/grids        registered grids (name-sorted)
//	POST /api/grids        upload a grid (JSON, gridgen format)
//	POST /api/plan         global view: plan all assets of a mission
//	POST /api/plan/asset   local view: plan a single asset
//
// The server answers 503 with a JSON error when a plan exceeds the
// -plan-timeout deadline, 413 when a body exceeds the -max-grid-bytes /
// -max-plan-bytes limits, and shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	mamorl "github.com/routeplanning/mamorl"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		grids       = flag.String("grids", "", "comma-separated grid JSON files to preload")
		preset      = flag.String("preset", "", "preload a preset mesh: caribbean, na-shore, atlantic")
		seed        = flag.Int64("seed", 1, "model training seed")
		planTimeout = flag.Duration("plan-timeout", 30*time.Second, "per-request planning deadline (503 on expiry)")
		maxGrid     = flag.Int64("max-grid-bytes", 32<<20, "grid upload body limit in bytes (413 beyond)")
		maxPlan     = flag.Int64("max-plan-bytes", 1<<20, "plan request body limit in bytes (413 beyond)")
		quiet       = flag.Bool("quiet", false, "disable per-request logging")
		drain       = flag.Duration("drain", 35*time.Second, "graceful-shutdown drain budget")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); disabled when empty")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "tmplard: ", log.LstdFlags)
	reqLogger := logger
	if *quiet {
		reqLogger = nil
	}

	logger.Printf("training Approx-MaMoRL model (seed %d)...", *seed)
	srv, err := mamorl.NewTMPLARServerOpts(*seed, mamorl.TMPLAROptions{
		PlanTimeout:  *planTimeout,
		MaxGridBytes: *maxGrid,
		MaxPlanBytes: *maxPlan,
		Logger:       reqLogger,
	})
	if err != nil {
		logger.Fatalf("%v", err)
	}

	if *grids != "" {
		for _, path := range strings.Split(*grids, ",") {
			g, err := mamorl.LoadGrid(strings.TrimSpace(path))
			if err != nil {
				logger.Fatalf("load %s: %v", path, err)
			}
			srv.InstallGrid(g)
			logger.Printf("installed grid %v", g.Stats())
		}
	}
	if *preset != "" {
		g, err := loadPreset(*preset, *seed)
		if err != nil {
			logger.Fatalf("%v", err)
		}
		srv.InstallGrid(g)
		logger.Printf("installed preset %v", g.Stats())
	}

	// WriteTimeout must outlast the planning deadline: a mission that uses
	// its full budget still needs time to serialize the route afterwards.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      srv.PlanTimeout() + 15*time.Second,
		IdleTimeout:       2 * time.Minute,
		ErrorLog:          logger,
	}

	// The profiling endpoints live on their own listener (normally bound to
	// localhost) so they are never reachable through the public API address.
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				logger.Printf("pprof: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (plan deadline %v)", *addr, srv.PlanTimeout())
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		logger.Fatalf("serve: %v", err)
	case <-ctx.Done():
		stop() // a second signal kills immediately
		logger.Printf("signal received; draining for up to %v", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Printf("shutdown: %v", err)
			_ = httpSrv.Close()
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Printf("serve: %v", err)
		}
		logger.Printf("stopped")
	}
}

func loadPreset(name string, seed int64) (*mamorl.Grid, error) {
	switch name {
	case "caribbean":
		return mamorl.CaribbeanGrid(seed)
	case "na-shore":
		return mamorl.NorthAmericaShoreGrid(seed)
	case "atlantic":
		return mamorl.AtlanticGrid(seed)
	default:
		return nil, fmt.Errorf("unknown preset %q", name)
	}
}
