// Command tmplard serves the TMPLAR-style JSON planning API (Section 4.7 of
// the paper): a back-end service that front-ends query for cooperative
// multi-asset route plans.
//
// Usage:
//
//	tmplard -addr :8080 -grids caribbean.json,ops.json
//	tmplard -addr :8080 -preset caribbean
//
// Endpoints:
//
//	GET  /healthz          liveness
//	GET  /api/grids        registered grids
//	POST /api/grids        upload a grid (JSON, gridgen format)
//	POST /api/plan         global view: plan all assets of a mission
//	POST /api/plan/asset   local view: plan a single asset
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"

	mamorl "github.com/routeplanning/mamorl"
)

func main() {
	var (
		addr   = flag.String("addr", ":8080", "listen address")
		grids  = flag.String("grids", "", "comma-separated grid JSON files to preload")
		preset = flag.String("preset", "", "preload a preset mesh: caribbean, na-shore, atlantic")
		seed   = flag.Int64("seed", 1, "model training seed")
	)
	flag.Parse()

	log.Printf("training Approx-MaMoRL model (seed %d)...", *seed)
	srv, err := mamorl.NewTMPLARServer(*seed)
	if err != nil {
		log.Fatalf("tmplard: %v", err)
	}

	if *grids != "" {
		for _, path := range strings.Split(*grids, ",") {
			g, err := mamorl.LoadGrid(strings.TrimSpace(path))
			if err != nil {
				log.Fatalf("tmplard: load %s: %v", path, err)
			}
			srv.InstallGrid(g)
			log.Printf("installed grid %v", g.Stats())
		}
	}
	if *preset != "" {
		g, err := loadPreset(*preset, *seed)
		if err != nil {
			log.Fatalf("tmplard: %v", err)
		}
		srv.InstallGrid(g)
		log.Printf("installed preset %v", g.Stats())
	}

	log.Printf("tmplard listening on %s", *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatal(err)
	}
}

func loadPreset(name string, seed int64) (*mamorl.Grid, error) {
	switch name {
	case "caribbean":
		return mamorl.CaribbeanGrid(seed)
	case "na-shore":
		return mamorl.NorthAmericaShoreGrid(seed)
	case "atlantic":
		return mamorl.AtlanticGrid(seed)
	default:
		return nil, fmt.Errorf("unknown preset %q", name)
	}
}
