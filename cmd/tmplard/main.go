// Command tmplard serves the TMPLAR-style JSON planning API (Section 4.7 of
// the paper): a back-end service that front-ends query for cooperative
// multi-asset route plans.
//
// Usage:
//
//	tmplard -addr :8080 -grids caribbean.json,ops.json
//	tmplard -addr :8080 -preset caribbean -plan-timeout 10s
//	tmplard -addr :8080 -preset caribbean -model-dir /var/lib/mamorl/models
//
// Endpoints:
//
//	GET  /healthz               liveness
//	GET  /readyz                readiness (503 until a grid and the model are loaded)
//	GET  /version               binary build info (module version, Go version, VCS)
//	GET  /metrics               metrics (Prometheus text; ?format=json for JSON)
//	GET  /debug/traces          recent request traces (ring buffer, JSON; ?limit= / ?name= filters)
//	GET  /debug/slo             evaluated SLO burn-rate report (JSON; see -slo-config)
//	GET  /debug/prof            continuous-profiling captures (JSON; see -profile-interval)
//	GET  /debug/prof/{id}       one capture's hot-function tables (?format=raw&kind= downloads pprof)
//	GET  /debug/catalog         planner catalog snapshot: resident entries, LRU order, hit/miss stats (JSON)
//	GET  /debug/dash            self-contained live dashboard (HTML, no external assets)
//	GET  /debug/metrics/stream  time-series samples over SSE (feeds the dashboard)
//	GET  /api/grids             registered grids (name-sorted)
//	POST /api/grids             upload a grid (JSON, gridgen format)
//	POST /api/plan              global view: plan all assets of a mission (grid/model_id select the tenant)
//	POST /api/plan/asset        local view: plan a single asset
//	POST /api/jobs/plan         submit a plan as an async job (202 + job ID)
//	GET  /api/jobs/{id}         poll a job (state, result when done)
//	DELETE /api/jobs/{id}       cancel a queued or running job
//	GET  /api/jobs/{id}/events  job status transitions over SSE
//
// With -model-dir, the trained Approx-MaMoRL model persists in a
// content-addressed registry: a restart warm-starts from the stored
// artifact instead of retraining (the startup log names the artifact), and
// a cache miss trains once and registers the result.
//
// The server answers 503 with a JSON error when a plan exceeds the
// -plan-timeout deadline, 413 when a body exceeds the -max-grid-bytes /
// -max-plan-bytes limits, 429 with Retry-After when the async job queue is
// full, and shuts down gracefully on SIGINT/SIGTERM (draining the job
// queue). Every response carries an X-Trace-Id header; request log records
// carry the same ID, and GET /debug/traces resolves it to the full span
// tree.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	mamorl "github.com/routeplanning/mamorl"
)

// newLogger builds the process logger in the requested format.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		grids       = flag.String("grids", "", "comma-separated grid JSON files to preload")
		preset      = flag.String("preset", "", "preload a preset mesh: caribbean, na-shore, atlantic")
		seed        = flag.Int64("seed", 1, "model training seed")
		planTimeout = flag.Duration("plan-timeout", 30*time.Second, "per-request planning deadline (503 on expiry)")
		maxGrid     = flag.Int64("max-grid-bytes", 32<<20, "grid upload body limit in bytes (413 beyond)")
		maxPlan     = flag.Int64("max-plan-bytes", 1<<20, "plan request body limit in bytes (413 beyond)")
		traceBuf    = flag.Int("trace-buffer", 256, "recent request traces kept for GET /debug/traces")
		logFormat   = flag.String("log-format", "text", "log output format: text or json")
		quiet       = flag.Bool("quiet", false, "disable per-request logging")
		drain       = flag.Duration("drain", 35*time.Second, "graceful-shutdown drain budget")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); disabled when empty")
		sampleEvery = flag.Duration("sample-interval", 2*time.Second, "metrics sampler tick feeding /debug/dash")
		modelDir    = flag.String("model-dir", "", "persistent model registry directory (warm-start on restart; empty disables)")
		trainWork   = flag.Int("train-workers", 1, "goroutines sharding the train-on-miss model fit; weights and artifact IDs are byte-identical at any value")
		jobWorkers  = flag.Int("job-workers", 0, "async planning worker pool size (0 = default)")
		jobQueue    = flag.Int("job-queue", 0, "async planning queue depth before 429 backpressure (0 = default)")
		jobTimeout  = flag.Duration("job-timeout", 0, "per-job execution deadline (0 = plan-timeout)")
		jobRetain   = flag.Duration("job-retention", 0, "how long finished job records stay queryable (0 = default 15m, negative = forever)")
		jobRecords  = flag.Int("job-max-records", 0, "finished job records retained before eviction (0 = default 10000, negative = unbounded)")
		maxNodes    = flag.Int64("max-nodes", 0, "per-request budget: planner node expansions (0 = unlimited; 429 when exhausted)")
		maxSamples  = flag.Int64("max-samples", 0, "per-request budget: training samples drawn (0 = unlimited; 429 when exhausted)")
		maxBytes    = flag.Int64("max-bytes", 0, "per-request budget: approximate bytes allocated (0 = unlimited; 429 when exhausted)")
		sseKeep     = flag.Duration("sse-keepalive", 0, "SSE idle keep-alive interval (0 = default 15s, negative = disabled)")
		sloConfig   = flag.String("slo-config", "", "SLO spec JSON file ({\"slos\": [...]}); empty = compiled-in defaults, \"none\" disables evaluation")
		mutexFrac   = flag.Int("mutex-profile-fraction", 0, "runtime.SetMutexProfileFraction for the -pprof mutex profile (0 = off)")
		blockRate   = flag.Int("block-profile-rate", 0, "runtime.SetBlockProfileRate in ns for the -pprof block profile (0 = off)")
		profEvery   = flag.Duration("profile-interval", 0, "continuous profiler: scheduled capture interval feeding /debug/prof (0 = disabled)")
		profWindow  = flag.Duration("profile-window", 5*time.Second, "continuous profiler: CPU sampling window per capture")
		catCap      = flag.Int("catalog-capacity", 0, "resident (grid, model) planner entries before LRU eviction (0 = default 8)")
		batchWindow = flag.Duration("batch-window", 0, "micro-batch straggler wait per planner before executing a partial Decide batch (0 = no wait)")
		batchMax    = flag.Int("batch-max", 0, "Decide tasks executed per micro-batch round (0 = default 8)")
		version     = flag.Bool("version", false, "print build info and exit")
	)
	flag.Parse()

	if *version {
		bi := mamorl.ReadBuildInfo()
		fmt.Printf("tmplard %s (go %s, rev %s, built %s, modified %v)\n",
			bi.Version, bi.GoVersion, bi.Revision, bi.BuildTime, bi.Modified)
		return
	}

	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fatalf := func(format string, args ...any) {
		logger.Error(fmt.Sprintf(format, args...))
		os.Exit(1)
	}
	reqLogger := logger
	if *quiet {
		reqLogger = nil
	}

	bi := mamorl.ReadBuildInfo()
	logger.Info("tmplard starting",
		"version", bi.Version, "go", bi.GoVersion,
		"revision", bi.Revision, "modified", bi.Modified)

	// nil keeps the compiled-in default objectives; an empty non-nil slice
	// disables evaluation ("none"); a file path replaces them entirely.
	var sloSpecs []mamorl.SLOSpec
	switch *sloConfig {
	case "":
	case "none":
		sloSpecs = []mamorl.SLOSpec{}
	default:
		sloSpecs, err = mamorl.LoadSLOConfig(*sloConfig)
		if err != nil {
			fatalf("%v", err)
		}
		logger.Info("loaded SLO config", "path", *sloConfig, "slos", len(sloSpecs))
	}

	logger.Info("initializing Approx-MaMoRL model", "seed", *seed, "model_dir", *modelDir)
	srv, err := mamorl.NewTMPLARServerOpts(*seed, mamorl.TMPLAROptions{
		PlanTimeout:     *planTimeout,
		MaxGridBytes:    *maxGrid,
		MaxPlanBytes:    *maxPlan,
		TraceBuffer:     *traceBuf,
		Logger:          reqLogger,
		SampleInterval:  *sampleEvery,
		ModelDir:        *modelDir,
		TrainWorkers:    *trainWork,
		JobWorkers:      *jobWorkers,
		JobQueueDepth:   *jobQueue,
		JobTimeout:      *jobTimeout,
		JobRetention:    *jobRetain,
		JobMaxRecords:   *jobRecords,
		MaxNodes:        *maxNodes,
		MaxSamples:      *maxSamples,
		MaxBytes:        *maxBytes,
		SSEKeepAlive:    *sseKeep,
		SLOs:            sloSpecs,
		ProfileInterval: *profEvery,
		ProfileWindow:   *profWindow,

		CatalogCapacity:    *catCap,
		CatalogBatchWindow: *batchWindow,
		CatalogMaxBatch:    *batchMax,
	})
	if err != nil {
		fatalf("%v", err)
	}
	switch src, artifact := srv.ModelSource(); src {
	case "registry":
		logger.Info("model warm-started from registry artifact", "artifact", artifact)
	default:
		logger.Info("model freshly trained", "artifact", artifact)
	}

	if *grids != "" {
		for _, path := range strings.Split(*grids, ",") {
			g, err := mamorl.LoadGrid(strings.TrimSpace(path))
			if err != nil {
				fatalf("load %s: %v", path, err)
			}
			srv.InstallGrid(g)
			logger.Info("installed grid", "grid", fmt.Sprint(g.Stats()))
		}
	}
	if *preset != "" {
		g, err := loadPreset(*preset, *seed)
		if err != nil {
			fatalf("%v", err)
		}
		srv.InstallGrid(g)
		logger.Info("installed preset", "grid", fmt.Sprint(g.Stats()))
	}

	// WriteTimeout must outlast the planning deadline: a mission that uses
	// its full budget still needs time to serialize the route afterwards.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      srv.PlanTimeout() + 15*time.Second,
		IdleTimeout:       2 * time.Minute,
		ErrorLog:          slog.NewLogLogger(logger.Handler(), slog.LevelError),
	}

	// The profiling endpoints live on their own listener (normally bound to
	// localhost) so they are never reachable through the public API address.
	if *pprofAddr != "" {
		// Contention profiles are opt-in: sampling mutex waits and blocking
		// events costs a little on every contended operation, so both stay
		// off unless their flag asks for them.
		if *mutexFrac > 0 {
			runtime.SetMutexProfileFraction(*mutexFrac)
			logger.Info("mutex profiling enabled", "fraction", *mutexFrac)
		}
		if *blockRate > 0 {
			runtime.SetBlockProfileRate(*blockRate)
			logger.Info("block profiling enabled", "rate_ns", *blockRate)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				logger.Error("pprof", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Tick the time-series sampler so /debug/dash and /debug/metrics/stream
	// are live; it stops with the signal context during shutdown.
	go srv.Sampler().Run(ctx)

	// Scheduled profile captures for /debug/prof run until shutdown. Run is
	// nil-safe, so this is a no-op when -profile-interval is 0; SLO-breach
	// captures need no runner either way.
	if srv.Profiler().Enabled() {
		logger.Info("continuous profiler enabled",
			"interval", *profEvery, "window", srv.Profiler().Window())
	}
	go srv.Profiler().Run(ctx)

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "plan_deadline", srv.PlanTimeout())
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatalf("serve: %v", err)
	case <-ctx.Done():
		stop() // a second signal kills immediately
		logger.Info("signal received; draining", "budget", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Error("shutdown", "err", err)
			_ = httpSrv.Close()
		}
		// The listener is closed; finish the async jobs still in the queue
		// (new submissions were already being rejected) before exiting.
		if err := srv.DrainJobs(shutdownCtx); err != nil {
			logger.Error("job drain", "err", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve", "err", err)
		}
		logger.Info("stopped")
	}
}

func loadPreset(name string, seed int64) (*mamorl.Grid, error) {
	switch name {
	case "caribbean":
		return mamorl.CaribbeanGrid(seed)
	case "na-shore":
		return mamorl.NorthAmericaShoreGrid(seed)
	case "atlantic":
		return mamorl.AtlanticGrid(seed)
	default:
		return nil, fmt.Errorf("unknown preset %q", name)
	}
}
