// Command mamorl trains the deployable Approx-MaMoRL model and plans
// cooperative search missions with it.
//
// Usage:
//
//	mamorl train -out model.json [-seed 1] [-model-dir /var/lib/mamorl/models]
//	mamorl plan -grid grid.json -model model.json -assets 4 -radius 1.2 \
//	    -speed 3 -comm 3 [-algorithm approx|approx-pk|baseline1|baseline2|random]
package main

import (
	"flag"
	"fmt"
	"os"

	mamorl "github.com/routeplanning/mamorl"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = cmdTrain(os.Args[2:])
	case "plan":
		err = cmdPlan(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mamorl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  mamorl train  -out model.json [-seed N] [-model-dir DIR]
  mamorl plan   -grid grid.json -model model.json [flags]
  mamorl replay -grid grid.json -trace trace.json [-width N -height N]`)
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	gridPath := fs.String("grid", "", "grid JSON path (required)")
	tracePath := fs.String("trace", "", "trace JSON path from `mamorl plan -trace` (required)")
	width := fs.Int("width", 72, "map width in characters")
	height := fs.Int("height", 24, "map height in characters")
	epoch := fs.Int("epoch", 0, "render only the first N epochs (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *gridPath == "" || *tracePath == "" {
		return fmt.Errorf("-grid and -trace are required")
	}
	g, err := mamorl.LoadGrid(*gridPath)
	if err != nil {
		return err
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := mamorl.ReadTrace(f)
	if err != nil {
		return err
	}
	if *epoch > 0 && *epoch < len(tr.Epochs) {
		tr.Epochs = tr.Epochs[:*epoch]
		tr.Outcome = nil // a truncated trace has no final outcome
	}
	dest := mamorl.NodeID(-1)
	if n := len(tr.Epochs); n > 0 && tr.Outcome != nil && tr.Outcome.Found {
		// The destination is wherever the finder ended up sensing it; the
		// trace does not store it, so mark the finder's last node.
		dest = tr.Epochs[n-1].Nodes[tr.Outcome.FoundBy]
	}
	fmt.Print(mamorl.RenderMission(g, tr, nil, dest, *width, *height))
	return nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	out := fs.String("out", "model.json", "output model path")
	seed := fs.Int64("seed", 1, "random seed")
	episodes := fs.Int("sample-episodes", 5, "sampling missions run on the exact solver")
	modelDir := fs.String("model-dir", "", "also register the artifact in this model registry (tmplard -model-dir warm-starts from it)")
	workers := fs.Int("train-workers", 1, "goroutines sharding the model fit; weights and artifact IDs are byte-identical at any value")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Println("training exact MaMoRL on the 50-node sample grid and fitting Approx-MaMoRL...")
	model, err := mamorl.Train(mamorl.TrainConfig{Seed: *seed, SampleEpisodes: *episodes, FitWorkers: *workers})
	if err != nil {
		return err
	}
	if err := model.Save(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes of weights)\n", *out, model.ModelBytes())
	if *modelDir != "" {
		reg, err := mamorl.OpenModelRegistry(*modelDir)
		if err != nil {
			return err
		}
		man, err := model.SaveToRegistry(reg)
		if err != nil {
			return err
		}
		fmt.Printf("registered artifact %s (grid %s, seed %d) in %s\n", man.ID, man.Grid, man.Seed, *modelDir)
	}
	return nil
}

func cmdPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	gridPath := fs.String("grid", "", "grid JSON path (required)")
	modelPath := fs.String("model", "", "model JSON path (trains in-process if empty)")
	assets := fs.Int("assets", 4, "number of assets")
	radius := fs.Float64("radius", 1.2, "sensing radius in average edge weights")
	speed := fs.Int("speed", 3, "maximum asset speed")
	comm := fs.Int("comm", 3, "communication period k")
	algorithm := fs.String("algorithm", "approx", "approx, approx-pk, baseline1, baseline2, random")
	seed := fs.Int64("seed", 1, "random seed")
	tracePath := fs.String("trace", "", "write an epoch-by-epoch mission trace (JSON) to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *gridPath == "" {
		return fmt.Errorf("-grid is required")
	}
	g, err := mamorl.LoadGrid(*gridPath)
	if err != nil {
		return err
	}
	sc, err := mamorl.NewScenario(g, *assets, *radius, *speed, *comm)
	if err != nil {
		return err
	}

	var model *mamorl.Model
	if *algorithm == "approx" || *algorithm == "approx-pk" {
		if *modelPath != "" {
			model, err = mamorl.LoadModel(*modelPath)
		} else {
			fmt.Println("no -model given; training in-process...")
			model, err = mamorl.Train(mamorl.TrainConfig{Seed: *seed})
		}
		if err != nil {
			return err
		}
	}

	var planner mamorl.Planner
	opts := mamorl.RunOptions{}
	switch *algorithm {
	case "approx":
		planner = model.NewPlanner(*seed)
	case "approx-pk":
		d := g.Pos(sc.Dest)
		r := 3 * g.AvgEdgeWeight()
		region := mamorl.NewRect(
			mamorl.Point{X: d.X - r, Y: d.Y - r}, mamorl.Point{X: d.X + r, Y: d.Y + r})
		planner, err = model.NewPartialKnowledgePlanner(sc, region, *seed)
		if err != nil {
			return err
		}
	case "baseline1":
		planner = mamorl.NewBaseline1(*seed)
	case "baseline2":
		planner = mamorl.NewBaseline2(*seed)
		opts.Collision = mamorl.AbortOnCollision
	case "random":
		planner = mamorl.NewRandomWalk(*seed)
	default:
		return fmt.Errorf("unknown algorithm %q", *algorithm)
	}

	var trace *mamorl.Trace
	if *tracePath != "" {
		trace = mamorl.NewTrace()
		opts.OnStep = trace.Record
	}

	fmt.Printf("planning on %v\n", g.Stats())
	fmt.Printf("  %d assets, destination node %d (hidden from the team)\n", *assets, sc.Dest)
	res, err := mamorl.Run(sc, planner, opts)
	if err != nil {
		return err
	}
	fmt.Printf("result: %v\n", res)

	if trace != nil {
		trace.Finish(res)
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("trace: %d epochs written to %s (wait fraction %.0f%%)\n",
			len(trace.Epochs), *tracePath, 100*trace.WaitFraction())
	}
	return nil
}
