// Command benchjson converts `go test -bench -benchmem` text output into a
// machine-readable JSON report. It reads the benchmark stream on stdin,
// echoes it unchanged to stdout (so it can sit at the end of a pipe without
// hiding progress), and writes the parsed report to the -o file.
//
// Usage:
//
//	go test -bench=. -benchmem | benchjson -o BENCH.json
//	benchjson -compare old.json new.json
//	benchjson -compare -threshold 10 old.json new.json
//	benchjson -profdiff old-capture.json new-capture.json
//	benchjson -profdiff -kind heap -prof-threshold 3 old.pb.gz new.pb.gz
//
// Each "BenchmarkName-P  N  v1 unit1  v2 unit2 ..." line becomes one entry
// with every reported metric keyed by its unit (ns/op, B/op, allocs/op and
// any b.ReportMetric custom units).
//
// In -compare mode the command diffs two reports instead: for every
// benchmark present in both files it prints the ns/op and allocs/op deltas,
// and exits nonzero when any ns/op regression exceeds -threshold percent —
// a CI tripwire against silent performance drift.
//
// In -profdiff mode the command diffs two profiles: each side may be a raw
// pprof protobuf (a /debug/prof ?format=raw download, a -cpuprofile file) or
// a capture JSON (GET /debug/prof/{id}, experiments -profile-out). It prints
// how every function's flat share shifted and exits nonzero when any
// function grew by more than -prof-threshold percentage points — the same
// tripwire, aimed at where the time went rather than how much.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole run.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output JSON file (required unless -compare/-profdiff)")
	compare := flag.Bool("compare", false, "compare two report files: benchjson -compare old.json new.json")
	threshold := flag.Float64("threshold", 15, "with -compare, exit nonzero when any ns/op regression exceeds this percentage")
	profDiff := flag.Bool("profdiff", false, "compare two profiles (raw pprof or capture JSON): benchjson -profdiff old new")
	profKind := flag.String("kind", "cpu", "with -profdiff, which profile kind to compare: cpu, heap, goroutine, mutex, block")
	profThreshold := flag.Float64("prof-threshold", 5, "with -profdiff, exit nonzero when any function's flat share grows by more than this many percentage points")
	flag.Parse()

	if *profDiff {
		if flag.NArg() != 2 {
			log.Fatal("benchjson: -profdiff wants exactly two arguments: old new")
		}
		regressions, err := runProfDiff(os.Stdout, flag.Arg(0), flag.Arg(1), *profKind, *profThreshold)
		if err != nil {
			log.Fatalf("benchjson: %v", err)
		}
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d function(s) grew beyond %.0f flat-share points\n", regressions, *profThreshold)
			os.Exit(1)
		}
		return
	}
	if *compare {
		if flag.NArg() != 2 {
			log.Fatal("benchjson: -compare wants exactly two arguments: old.json new.json")
		}
		regressions, err := runCompare(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold)
		if err != nil {
			log.Fatalf("benchjson: %v", err)
		}
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed beyond %.0f%%\n", regressions, *threshold)
			os.Exit(1)
		}
		return
	}
	if *out == "" {
		log.Fatal("benchjson: -o file is required")
	}

	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Package = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("benchjson: read: %v", err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatalf("benchjson: write: %v", err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

// parseLine parses "BenchmarkFoo-8   123   45.6 ns/op   7 B/op ...".
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Metrics: map[string]float64{}}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Procs = p
			b.Name = b.Name[:i]
		}
	}
	b.Name = strings.TrimPrefix(b.Name, "Benchmark")
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
