package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// benchDelta is the comparison of one benchmark across two reports.
type benchDelta struct {
	Name string
	// OldNs/NewNs are ns/op; OldAllocs/NewAllocs are allocs/op. A metric
	// absent from either report leaves the pair at NaN-free zero and the
	// delta unset (has* false).
	OldNs, NewNs          float64
	OldAllocs, NewAllocs  float64
	hasNs, hasAllocs      bool
	NsDeltaPct, AllocsPct float64
}

// loadReport reads a benchjson -o report file.
func loadReport(path string) (Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return Report{}, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("parse %s: %w", path, err)
	}
	return rep, nil
}

// pct is the relative change from old to new, in percent. A zero old value
// has no meaningful ratio; report 0 so a 0→0 metric never trips thresholds.
func pct(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV * 100
}

// compareReports matches benchmarks by name (a benchmark appearing in only
// one report is skipped — it has nothing to regress against) and computes
// per-benchmark ns/op and allocs/op deltas, name-sorted.
func compareReports(oldRep, newRep Report) []benchDelta {
	oldByName := make(map[string]Benchmark, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		oldByName[b.Name] = b
	}
	var out []benchDelta
	for _, nb := range newRep.Benchmarks {
		ob, ok := oldByName[nb.Name]
		if !ok {
			continue
		}
		d := benchDelta{Name: nb.Name}
		if oldNs, ok1 := ob.Metrics["ns/op"]; ok1 {
			if newNs, ok2 := nb.Metrics["ns/op"]; ok2 {
				d.OldNs, d.NewNs, d.hasNs = oldNs, newNs, true
				d.NsDeltaPct = pct(oldNs, newNs)
			}
		}
		if oldA, ok1 := ob.Metrics["allocs/op"]; ok1 {
			if newA, ok2 := nb.Metrics["allocs/op"]; ok2 {
				d.OldAllocs, d.NewAllocs, d.hasAllocs = oldA, newA, true
				d.AllocsPct = pct(oldA, newA)
			}
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// countRegressions counts deltas whose ns/op worsened beyond threshold
// percent. Alloc growth alone is reported but does not trip the gate: alloc
// counts are exact and a deliberate +1 on a tiny benchmark would read as a
// huge percentage.
func countRegressions(deltas []benchDelta, threshold float64) int {
	n := 0
	for _, d := range deltas {
		if d.hasNs && d.NsDeltaPct > threshold {
			n++
		}
	}
	return n
}

// writeCompare renders the delta table.
func writeCompare(w io.Writer, deltas []benchDelta, threshold float64) {
	fmt.Fprintf(w, "%-40s %14s %14s %9s %12s %9s\n",
		"benchmark", "old ns/op", "new ns/op", "Δns/op", "allocs/op", "Δallocs")
	for _, d := range deltas {
		mark := " "
		if d.hasNs && d.NsDeltaPct > threshold {
			mark = "!"
		}
		ns, allocs, dNs, dAllocs := "-", "-", "-", "-"
		oldNs := "-"
		if d.hasNs {
			oldNs = fmt.Sprintf("%.1f", d.OldNs)
			ns = fmt.Sprintf("%.1f", d.NewNs)
			dNs = fmt.Sprintf("%+.1f%%", d.NsDeltaPct)
		}
		if d.hasAllocs {
			allocs = fmt.Sprintf("%.0f→%.0f", d.OldAllocs, d.NewAllocs)
			dAllocs = fmt.Sprintf("%+.1f%%", d.AllocsPct)
		}
		fmt.Fprintf(w, "%-40s %14s %14s %9s %12s %9s %s\n",
			d.Name, oldNs, ns, dNs, allocs, dAllocs, mark)
	}
}

// runCompare loads both reports, prints the delta table, and returns how
// many benchmarks regressed beyond the threshold.
func runCompare(w io.Writer, oldPath, newPath string, threshold float64) (int, error) {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return 0, err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return 0, err
	}
	deltas := compareReports(oldRep, newRep)
	if len(deltas) == 0 {
		fmt.Fprintln(w, "no common benchmarks between the two reports")
		return 0, nil
	}
	writeCompare(w, deltas, threshold)
	return countRegressions(deltas, threshold), nil
}
