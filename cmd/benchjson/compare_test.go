package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func reportFixture(ns map[string]float64, allocs map[string]float64) Report {
	var rep Report
	for name, v := range ns {
		b := Benchmark{Name: name, Iterations: 100, Metrics: map[string]float64{"ns/op": v}}
		if a, ok := allocs[name]; ok {
			b.Metrics["allocs/op"] = a
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	return rep
}

func TestCompareReports(t *testing.T) {
	oldRep := reportFixture(
		map[string]float64{"Plan": 1000, "Train": 500, "Gone": 10},
		map[string]float64{"Plan": 10},
	)
	newRep := reportFixture(
		map[string]float64{"Plan": 1300, "Train": 450, "Fresh": 5},
		map[string]float64{"Plan": 12},
	)
	deltas := compareReports(oldRep, newRep)
	if len(deltas) != 2 {
		t.Fatalf("deltas = %d, want 2 (Gone and Fresh have no counterpart)", len(deltas))
	}
	// Name-sorted: Plan then Train.
	if deltas[0].Name != "Plan" || deltas[1].Name != "Train" {
		t.Fatalf("order: %s, %s", deltas[0].Name, deltas[1].Name)
	}
	if got := deltas[0].NsDeltaPct; got < 29.9 || got > 30.1 {
		t.Errorf("Plan Δns = %v%%, want ~+30%%", got)
	}
	if got := deltas[0].AllocsPct; got < 19.9 || got > 20.1 {
		t.Errorf("Plan Δallocs = %v%%, want ~+20%%", got)
	}
	if got := deltas[1].NsDeltaPct; got > -9.9 || got < -10.1 {
		t.Errorf("Train Δns = %v%%, want ~-10%%", got)
	}

	if n := countRegressions(deltas, 15); n != 1 {
		t.Errorf("regressions at 15%% = %d, want 1 (only Plan)", n)
	}
	if n := countRegressions(deltas, 50); n != 0 {
		t.Errorf("regressions at 50%% = %d, want 0", n)
	}
	// Alloc growth alone never trips the gate.
	allocOnly := compareReports(
		reportFixture(map[string]float64{"X": 100}, map[string]float64{"X": 1}),
		reportFixture(map[string]float64{"X": 100}, map[string]float64{"X": 5}),
	)
	if n := countRegressions(allocOnly, 15); n != 0 {
		t.Errorf("alloc-only change tripped the ns/op gate: %d", n)
	}
}

func TestPct(t *testing.T) {
	if got := pct(100, 130); got != 30 {
		t.Errorf("pct(100,130) = %v", got)
	}
	if got := pct(0, 5); got != 0 {
		t.Errorf("pct from zero = %v, want 0 (no meaningful ratio)", got)
	}
}

func writeReport(t *testing.T, dir, name string, rep Report) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCompare(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", reportFixture(
		map[string]float64{"Plan": 1000}, map[string]float64{"Plan": 3}))
	newPath := writeReport(t, dir, "new.json", reportFixture(
		map[string]float64{"Plan": 1300}, map[string]float64{"Plan": 3}))

	var out strings.Builder
	n, err := runCompare(&out, oldPath, newPath, 15)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("regressions = %d, want 1", n)
	}
	if !strings.Contains(out.String(), "Plan") || !strings.Contains(out.String(), "+30.0%") {
		t.Errorf("table output:\n%s", out.String())
	}

	// A generous threshold passes the same pair.
	out.Reset()
	if n, err := runCompare(&out, oldPath, newPath, 50); err != nil || n != 0 {
		t.Errorf("threshold 50: n=%d err=%v", n, err)
	}

	// Missing file surfaces as an error, not a panic.
	if _, err := runCompare(&out, filepath.Join(dir, "absent.json"), newPath, 15); err == nil {
		t.Error("missing old report not rejected")
	}
	// Disjoint reports: no common benchmarks, no regressions.
	otherPath := writeReport(t, dir, "other.json", reportFixture(map[string]float64{"Else": 1}, nil))
	out.Reset()
	if n, err := runCompare(&out, oldPath, otherPath, 15); err != nil || n != 0 {
		t.Errorf("disjoint: n=%d err=%v", n, err)
	}
	if !strings.Contains(out.String(), "no common benchmarks") {
		t.Errorf("disjoint output: %s", out.String())
	}
}
