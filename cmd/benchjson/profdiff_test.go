package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"

	"github.com/routeplanning/mamorl/internal/prof"
)

// tableFixture builds a cpu table whose flat shares are the given percents of
// a fixed 1e9 total.
func tableFixture(shares map[string]float64) prof.Table {
	t := prof.Table{Kind: "cpu", Unit: "nanoseconds", Total: 1e9, Samples: 100}
	for name, pct := range shares {
		t.Funcs = append(t.Funcs, prof.FuncStat{
			Name: name, Flat: int64(pct * 1e7), FlatPct: pct,
			Cum: int64(pct * 1e7), CumPct: pct,
		})
	}
	return t
}

func writeJSON(t *testing.T, path string, v any) {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCompareProfTables(t *testing.T) {
	oldT := tableFixture(map[string]float64{"planner.Expand": 40, "gc": 10, "gone.Away": 5})
	newT := tableFixture(map[string]float64{"planner.Expand": 52, "gc": 9, "fresh.Hot": 8})
	deltas := compareProfTables(oldT, newT)
	if len(deltas) != 4 {
		t.Fatalf("deltas = %d, want 4 (union of both sides)", len(deltas))
	}
	// Sorted by delta descending: Expand +12, fresh +8, gc -1, gone -5.
	wantOrder := []string{"planner.Expand", "fresh.Hot", "gc", "gone.Away"}
	for i, want := range wantOrder {
		if deltas[i].Name != want {
			t.Fatalf("order[%d] = %s, want %s (%+v)", i, deltas[i].Name, want, deltas)
		}
	}
	if d := deltas[0].DeltaPts; d < 11.9 || d > 12.1 {
		t.Errorf("Expand delta = %.1f, want 12", d)
	}
	if d := deltas[3].DeltaPts; d > -4.9 || d < -5.1 {
		t.Errorf("gone delta = %.1f, want -5", d)
	}
	if n := countProfRegressions(deltas, 5); n != 2 {
		t.Errorf("regressions beyond 5 pts = %d, want 2 (Expand, fresh.Hot)", n)
	}
	if n := countProfRegressions(deltas, 15); n != 0 {
		t.Errorf("regressions beyond 15 pts = %d, want 0", n)
	}
}

// TestRunProfDiff drives the whole mode over the three accepted input
// formats: a bare table, a capture, and a capture list.
func TestRunProfDiff(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeJSON(t, oldPath, tableFixture(map[string]float64{"planner.Expand": 40, "gc": 10}))
	writeJSON(t, newPath, prof.Capture{
		ID: "c000002", State: "done",
		Tables: []prof.Table{tableFixture(map[string]float64{"planner.Expand": 52, "gc": 10})},
	})

	var out bytes.Buffer
	n, err := runProfDiff(&out, oldPath, newPath, "cpu", 5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("regressions = %d, want 1:\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "planner.Expand") || !strings.Contains(out.String(), "!") {
		t.Fatalf("diff table lacks the flagged function:\n%s", out.String())
	}

	// The same comparison under a looser gate passes.
	if n, err := runProfDiff(&out, oldPath, newPath, "cpu", 20); err != nil || n != 0 {
		t.Fatalf("loose gate: n=%d err=%v", n, err)
	}

	// Capture-list input (experiments -profile-out): newest finished first.
	listPath := filepath.Join(dir, "list.json")
	writeJSON(t, listPath, []prof.Capture{
		{ID: "c000009", State: "failed"},
		{ID: "c000003", State: "done",
			Tables: []prof.Table{tableFixture(map[string]float64{"planner.Expand": 41, "gc": 10})}},
	})
	if n, err := runProfDiff(&out, oldPath, listPath, "cpu", 5); err != nil || n != 0 {
		t.Fatalf("capture list: n=%d err=%v", n, err)
	}

	// Asking for a kind the file lacks is an error, not an empty diff.
	if _, err := runProfDiff(&out, oldPath, newPath, "heap", 5); err == nil {
		t.Fatal("missing kind accepted")
	}
}

// TestLoadProfTableRaw feeds a real gzipped pprof protobuf (a heap snapshot
// of this test process) through the raw branch.
func TestLoadProfTableRaw(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.pb.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	// The snapshot reports live bytes at the last GC: pin some allocations so
	// inuse_space has something to attribute.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 64<<10))
	}
	runtime.GC()
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		t.Fatal(err)
	}
	runtime.KeepAlive(sink)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	tab, err := loadProfTable(path, "heap")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Kind != "heap" || tab.Unit != "bytes" || tab.Total <= 0 || len(tab.Funcs) == 0 {
		t.Fatalf("raw heap table = %+v", tab)
	}
}
