package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/routeplanning/mamorl/internal/prof"
)

// profDelta is the comparison of one function's flat share across two
// hot-function tables. Shares are percentages of each profile's own total, so
// two runs with different durations or sample counts still compare fairly.
type profDelta struct {
	Name           string
	OldPct, NewPct float64
	DeltaPts       float64 // NewPct - OldPct, in percentage points
}

// kindPreference mirrors the sample-type preference the profiler uses when
// folding each capture kind, so raw pprof files aggregate the same column as
// the JSON tables they are compared against.
func kindPreference(kind string) []string {
	switch kind {
	case "cpu":
		return []string{"cpu"}
	case "heap":
		return []string{"inuse_space"}
	case "mutex", "block":
		return []string{"delay"}
	case "goroutine":
		return []string{"goroutine"}
	default:
		return nil
	}
}

// loadProfTable reads one side of a -profdiff comparison. Three formats are
// accepted: a raw pprof protobuf (gzipped or not, e.g. a /debug/prof
// ?format=raw download or a -cpuprofile file), a JSON capture or capture list
// (GET /debug/prof/{id}, experiments -profile-out), or a bare JSON table.
func loadProfTable(path, kind string) (prof.Table, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return prof.Table{}, err
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return prof.Table{}, fmt.Errorf("%s: empty file", path)
	}
	if trimmed[0] != '{' && trimmed[0] != '[' {
		p, err := prof.Parse(data)
		if err != nil {
			return prof.Table{}, fmt.Errorf("%s: not JSON and not a pprof profile: %w", path, err)
		}
		return prof.Aggregate(p, kind, p.ValueIndex(kindPreference(kind)...), 0), nil
	}

	pickTable := func(c prof.Capture) (prof.Table, bool) {
		for _, t := range c.Tables {
			if t.Kind == kind {
				return t, true
			}
		}
		return prof.Table{}, false
	}
	if trimmed[0] == '[' {
		var captures []prof.Capture
		if err := json.Unmarshal(data, &captures); err != nil {
			return prof.Table{}, fmt.Errorf("%s: parse capture list: %w", path, err)
		}
		// Lists are written newest-first; take the newest finished capture
		// that folded the requested kind.
		for _, c := range captures {
			if c.State != "done" {
				continue
			}
			if t, ok := pickTable(c); ok {
				return t, nil
			}
		}
		return prof.Table{}, fmt.Errorf("%s: no finished capture with a %q table", path, kind)
	}
	var c prof.Capture
	if err := json.Unmarshal(data, &c); err != nil {
		return prof.Table{}, fmt.Errorf("%s: parse capture: %w", path, err)
	}
	if t, ok := pickTable(c); ok {
		return t, nil
	}
	// Not a capture wrapping tables — maybe the file is one bare table.
	var t prof.Table
	if err := json.Unmarshal(data, &t); err == nil && t.Kind != "" {
		if t.Kind != kind {
			return prof.Table{}, fmt.Errorf("%s: table is kind %q, want %q", path, t.Kind, kind)
		}
		return t, nil
	}
	return prof.Table{}, fmt.Errorf("%s: no %q table in capture %s", path, kind, c.ID)
}

// compareProfTables unions the two function sets and computes the flat-share
// shift of every function, sorted by delta descending (worst growth first).
func compareProfTables(oldT, newT prof.Table) []profDelta {
	oldPct := make(map[string]float64, len(oldT.Funcs))
	for _, f := range oldT.Funcs {
		oldPct[f.Name] = f.FlatPct
	}
	byName := make(map[string]*profDelta, len(oldT.Funcs)+len(newT.Funcs))
	for _, f := range oldT.Funcs {
		byName[f.Name] = &profDelta{Name: f.Name, OldPct: f.FlatPct, DeltaPts: -f.FlatPct}
	}
	for _, f := range newT.Funcs {
		d := byName[f.Name]
		if d == nil {
			d = &profDelta{Name: f.Name}
			byName[f.Name] = d
		}
		d.NewPct = f.FlatPct
		d.DeltaPts = d.NewPct - d.OldPct
	}
	out := make([]profDelta, 0, len(byName))
	for _, d := range byName {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DeltaPts != out[j].DeltaPts {
			return out[i].DeltaPts > out[j].DeltaPts
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// countProfRegressions counts functions whose flat share grew by more than
// threshold percentage points — including functions new to the profile, whose
// whole share is growth.
func countProfRegressions(deltas []profDelta, threshold float64) int {
	n := 0
	for _, d := range deltas {
		if d.DeltaPts > threshold {
			n++
		}
	}
	return n
}

// writeProfDiff renders the shift table: every regressing function, plus any
// function holding at least half a point of flat share on either side.
func writeProfDiff(w io.Writer, kind string, deltas []profDelta, threshold float64) {
	fmt.Fprintf(w, "%-60s %9s %9s %9s\n", kind+" function (flat share)", "old", "new", "Δpts")
	for _, d := range deltas {
		if d.DeltaPts <= threshold && d.OldPct < 0.5 && d.NewPct < 0.5 {
			continue
		}
		mark := " "
		if d.DeltaPts > threshold {
			mark = "!"
		}
		fmt.Fprintf(w, "%-60s %8.1f%% %8.1f%% %+8.1f %s\n", d.Name, d.OldPct, d.NewPct, d.DeltaPts, mark)
	}
}

// runProfDiff loads both profiles, prints the flat-share shift table, and
// returns how many functions regressed beyond the threshold.
func runProfDiff(w io.Writer, oldPath, newPath, kind string, threshold float64) (int, error) {
	oldT, err := loadProfTable(oldPath, kind)
	if err != nil {
		return 0, err
	}
	newT, err := loadProfTable(newPath, kind)
	if err != nil {
		return 0, err
	}
	if oldT.Total == 0 || newT.Total == 0 {
		return 0, fmt.Errorf("empty profile: old total %d, new total %d", oldT.Total, newT.Total)
	}
	deltas := compareProfTables(oldT, newT)
	writeProfDiff(w, kind, deltas, threshold)
	return countProfRegressions(deltas, threshold), nil
}
