// Command experiments regenerates every table and figure of the paper's
// evaluation section. By default it runs a reduced "quick" configuration
// (3 runs per cell, truncated sweeps) that finishes in a few minutes; pass
// -paperscale for the full 10-run protocol.
//
// Usage:
//
//	experiments                     # everything, quick
//	experiments -only table6,fig4   # a subset
//	experiments -paperscale         # full 10-run averaging, full sweeps
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"github.com/routeplanning/mamorl/internal/approx"
	"github.com/routeplanning/mamorl/internal/experiments"
	"github.com/routeplanning/mamorl/internal/grid"
	"github.com/routeplanning/mamorl/internal/neural"
)

func main() {
	var (
		only       = flag.String("only", "", "comma-separated subset: table2,table3,lemmas,table6,fig3,fig4,fig5,fig6,fig7,fig8,ablation,rendezvous,commrange")
		paperscale = flag.Bool("paperscale", false, "full 10-run averaging and full sweeps (slow)")
		seed       = flag.Int64("seed", 1, "base random seed")
		nnEpochs   = flag.Int("nn-epochs", 300, "NN-Approx training epochs; pass 10000 for the full Table 5 budget (slow)")
		csvDir     = flag.String("csv", "", "also write machine-readable CSVs of each experiment into this directory")
		parallel   = flag.Int("parallel", runtime.NumCPU(), "max concurrent mission runs across experiment cells; 1 disables parallelism")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the suite to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatalf("memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				log.Fatalf("memprofile: %v", err)
			}
		}()
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	run := func(k string) bool { return len(want) == 0 || want[k] }
	quick := !*paperscale

	// Ctrl-C stops the suite between missions instead of finishing all
	// seeds; the driver reports which experiment was interrupted.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	fail := func(what string, err error) {
		if errors.Is(err, context.Canceled) {
			log.Fatalf("%s: interrupted by signal", what)
		}
		log.Fatalf("%s: %v", what, err)
	}

	writeCSV := func(name string, fn func(io.Writer) error) {
		if *csvDir == "" {
			return
		}
		path := filepath.Join(*csvDir, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatalf("csv %s: %v", name, err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			log.Fatalf("csv %s: %v", name, err)
		}
		log.Printf("wrote %s", path)
	}

	base := experiments.DefaultParams()
	base.Seed = *seed
	if quick {
		base = base.Quick()
	}
	base.Parallel = *parallel

	if run("table2") {
		printTable2()
	}
	if run("table3") {
		printTable3(*seed, quick)
	}
	if run("lemmas") {
		printLemmas()
	}

	needHarness := run("table6") || run("fig3") || run("fig4") || run("fig5") || run("fig6") || run("fig7") || run("ablation") || run("rendezvous") || run("commrange")
	var h *experiments.Harness
	if needHarness {
		log.Println("training Approx-MaMoRL (Section 4.2 pipeline)...")
		var err error
		h, err = experiments.NewHarness(approx.TrainConfig{Seed: *seed})
		if err != nil {
			log.Fatalf("harness: %v", err)
		}
	}

	if run("table6") {
		log.Println("running Table 6 (algorithm comparison; exact MaMoRL rows may take a while)...")
		start := time.Now()
		rows, err := h.RunTable6(ctx, base)
		if err != nil {
			fail("table 6", err)
		}
		fmt.Println("=== Table 6: Comparison Among Implemented Algorithms ===")
		fmt.Print(experiments.FormatTable6(rows))
		writeCSV("table6.csv", func(w io.Writer) error { return experiments.WriteTable6CSV(w, rows) })
		log.Printf("table 6 done in %v", time.Since(start))
	}

	if run("fig3") {
		log.Println("running Figure 3 (Approx vs NN-Approx)...")
		p := base
		p.Nodes, p.Edges, p.MaxOutDegree, p.Assets, p.MaxSpeed = 200, 430, 8, 2, 3
		// Table 5's full budget is batch 1000 / 10000 epochs; -nn-epochs
		// bounds the run regardless of -paperscale so the suite stays
		// interactive (pass -nn-epochs 10000 for the full budget).
		opts := neural.TrainOptions{Epochs: *nnEpochs, BatchSize: 256, LearningRate: 0.05}
		if *paperscale {
			opts.BatchSize = neural.DefaultBatchSize
		}
		r, err := h.RunFigure3(ctx, p, opts, *seed)
		if err != nil {
			fail("figure 3", err)
		}
		fmt.Println("=== Figure 3 ===")
		fmt.Print(experiments.FormatFigure3(r))
	}

	if run("fig4") {
		log.Println("running Figure 4 (Pareto front)...")
		r, err := h.RunFigure4(ctx, base)
		if err != nil {
			fail("figure 4", err)
		}
		fmt.Println("=== Figure 4 ===")
		fmt.Print(experiments.FormatFigure4(r))
		writeCSV("figure4_pareto.csv", func(w io.Writer) error { return experiments.WriteParetoCSV(w, r) })
	}

	var sweeps []experiments.SweepResult
	if run("fig5") || run("fig7") {
		log.Println("running Figure 5/7 sweeps (Approx-MaMoRL)...")
		var err error
		sweeps, err = h.RunSweeps(ctx, experiments.AlgoApprox, base, quick)
		if err != nil {
			fail("figure 5/7 sweeps", err)
		}
	}
	if run("fig5") {
		fmt.Println("=== Figure 5 ===")
		fmt.Print(experiments.FormatSweeps("Figure 5", experiments.AlgoApprox, sweeps))
		writeCSV("figure5_7_sweeps.csv", func(w io.Writer) error {
			return experiments.WriteSweepsCSV(w, experiments.AlgoApprox, sweeps)
		})
	}
	if run("fig6") {
		log.Println("running Figure 6 sweeps (partial knowledge)...")
		pkSweeps, err := h.RunSweeps(ctx, experiments.AlgoApproxPK, base, quick)
		if err != nil {
			fail("figure 6 sweeps", err)
		}
		fmt.Println("=== Figure 6 ===")
		fmt.Print(experiments.FormatSweeps("Figure 6", experiments.AlgoApproxPK, pkSweeps))
		writeCSV("figure6_sweeps.csv", func(w io.Writer) error {
			return experiments.WriteSweepsCSV(w, experiments.AlgoApproxPK, pkSweeps)
		})
	}
	if run("fig7") {
		fmt.Println("=== Figure 7 ===")
		fmt.Print(experiments.FormatFigure7(experiments.AlgoApprox, sweeps))
	}

	if run("rendezvous") {
		log.Println("running the rendezvous study (search + gather)...")
		rows, err := h.RunRendezvous(ctx, base)
		if err != nil {
			fail("rendezvous", err)
		}
		fmt.Println("=== Rendezvous (ours; Definition 2 taken to the gathering point) ===")
		fmt.Print(experiments.FormatRendezvous(rows))
	}

	if run("commrange") {
		log.Println("running the comm-range study...")
		points, err := h.RunCommRange(ctx, base, nil)
		if err != nil {
			fail("comm range", err)
		}
		fmt.Println("=== Comm range (ours; Section 2.4.1's limited communication) ===")
		fmt.Print(experiments.FormatCommRange(points))
	}

	if run("ablation") {
		log.Println("running the ablation study (deployment mechanisms)...")
		p := base
		p.Assets = 6 // collision-relevant mechanisms need a crowd
		results, err := h.RunAblation(ctx, p)
		if err != nil {
			fail("ablation", err)
		}
		fmt.Println("=== Ablation (not in the paper; see DESIGN.md §2) ===")
		fmt.Print(experiments.FormatAblation(results))
	}

	if run("fig8") {
		log.Println("running Figure 8 (transfer learning; builds both basin meshes)...")
		carib, err := grid.CaribbeanGrid(*seed)
		if err != nil {
			log.Fatalf("caribbean: %v", err)
		}
		naShore, err := grid.NorthAmericaShoreGrid(*seed)
		if err != nil {
			log.Fatalf("na shore: %v", err)
		}
		runs := 10
		if quick {
			runs = 3
		}
		r, err := experiments.RunFigure8(ctx, carib, naShore, experiments.Figure8Options{Runs: runs, Seed: *seed, Parallel: *parallel})
		if err != nil {
			fail("figure 8", err)
		}
		fmt.Println("=== Figure 8 ===")
		fmt.Print(experiments.FormatFigure8(r))
		writeCSV("figure8_transfer.csv", func(w io.Writer) error { return experiments.WriteTransferCSV(w, r) })
	}
}
