// Command experiments regenerates every table and figure of the paper's
// evaluation section. By default it runs a reduced "quick" configuration
// (3 runs per cell, truncated sweeps) that finishes in a few minutes; pass
// -paperscale for the full 10-run protocol.
//
// Usage:
//
//	experiments                     # everything, quick
//	experiments -only table6,fig4   # a subset
//	experiments -paperscale         # full 10-run averaging, full sweeps
//	experiments -trace-out t.jsonl  # also record span traces of every run
//	experiments -dash :6061         # live dashboard at http://localhost:6061/debug/dash
//	experiments -curves-out c.csv   # per-episode learning curves (.json for JSON)
//
// On a terminal the suite shows a live progress line ([table6] 37/120 runs
// 4.1 runs/s  ETA 20s) on stderr; -quiet suppresses it.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"github.com/routeplanning/mamorl/internal/approx"
	"github.com/routeplanning/mamorl/internal/experiments"
	"github.com/routeplanning/mamorl/internal/grid"
	"github.com/routeplanning/mamorl/internal/neural"
	"github.com/routeplanning/mamorl/internal/obs"
	"github.com/routeplanning/mamorl/internal/prof"
	"github.com/routeplanning/mamorl/internal/trace"
)

// logger is the process-wide structured logger; fatalf logs at error level
// and exits. Both are set in main before any driver runs.
var (
	logger *slog.Logger
	fatalf func(format string, args ...any)
)

func main() {
	var (
		only         = flag.String("only", "", "comma-separated subset: table2,table3,lemmas,table6,fig3,fig4,fig5,fig6,fig7,fig8,ablation,rendezvous,commrange")
		paperscale   = flag.Bool("paperscale", false, "full 10-run averaging and full sweeps (slow)")
		seed         = flag.Int64("seed", 1, "base random seed")
		nnEpochs     = flag.Int("nn-epochs", 300, "NN-Approx training epochs; pass 10000 for the full Table 5 budget (slow)")
		trainWorkers = flag.Int("train-workers", 1, "goroutines sharding model fitting (linreg gram, NN minibatch SGD); results are byte-identical at any value")
		csvDir       = flag.String("csv", "", "also write machine-readable CSVs of each experiment into this directory")
		parallel     = flag.Int("parallel", runtime.NumCPU(), "max concurrent mission runs across experiment cells; 1 disables parallelism")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the suite to this file")
		memProfile   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceOut     = flag.String("trace-out", "", "write completed spans (cells, runs, missions) as JSONL to this file")
		metricsOut   = flag.String("metrics-out", "", "write the suite's metrics in Prometheus text format to this file on exit")
		curvesOut    = flag.String("curves-out", "", "write per-episode learning curves to this file (.json for JSON, else CSV)")
		dashAddr     = flag.String("dash", "", "serve the live dashboard (/debug/dash, /debug/metrics/stream, /metrics) on this address; disabled when empty")
		logFormat    = flag.String("log-format", "text", "log output format: text or json")
		quiet        = flag.Bool("quiet", false, "suppress the live progress line")
		profEnable   = flag.Bool("continuous-profile", false, "take scheduled profile captures while the suite runs and print the hottest functions on exit")
		profEvery    = flag.Duration("profile-interval", 30*time.Second, "continuous profiler: scheduled capture interval (needs -continuous-profile)")
		profWindow   = flag.Duration("profile-window", 5*time.Second, "continuous profiler: CPU sampling window per capture")
		profOut      = flag.String("profile-out", "", "write every capture's hot-function tables as JSON to this file on exit (benchjson -profdiff input)")
	)
	flag.Parse()

	switch *logFormat {
	case "", "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		fmt.Fprintf(os.Stderr, "unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	fatalf = func(format string, args ...any) {
		logger.Error(fmt.Sprintf(format, args...))
		os.Exit(1)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatalf("memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fatalf("memprofile: %v", err)
			}
		}()
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	run := func(k string) bool { return len(want) == 0 || want[k] }
	quick := !*paperscale

	// Ctrl-C stops the suite between missions instead of finishing all
	// seeds; the driver reports which experiment was interrupted.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	fail := func(what string, err error) {
		if errors.Is(err, context.Canceled) {
			fatalf("%s: interrupted by signal", what)
		}
		fatalf("%s: %v", what, err)
	}

	writeCSV := func(name string, fn func(io.Writer) error) {
		if *csvDir == "" {
			return
		}
		path := filepath.Join(*csvDir, name)
		f, err := os.Create(path)
		if err != nil {
			fatalf("csv %s: %v", name, err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			fatalf("csv %s: %v", name, err)
		}
		logger.Info("wrote csv", "path", path)
	}

	// Observability surface: metrics always accumulate (they are cheap and
	// -metrics-out decides whether they persist); the tracer exists only
	// when -trace-out asks for spans, so the default suite runs untraced.
	metrics := obs.New()
	experiments.RegisterMetricsHelp(metrics)

	// Continuous profiling: scheduled captures accumulate in a bounded ring
	// while the suite runs. The exit report prints the hottest functions, and
	// -profile-out persists every table for benchjson -profdiff comparisons
	// across runs.
	if *profOut != "" && !*profEnable {
		fatalf("-profile-out needs -continuous-profile")
	}
	if *profEnable {
		profiler := prof.New(prof.Options{
			Interval: *profEvery, Window: *profWindow,
			Metrics: metrics, Logger: logger,
		})
		logger.Info("continuous profiler enabled",
			"interval", *profEvery, "window", profiler.Window())
		profCtx, stopProfiler := context.WithCancel(context.Background())
		defer stopProfiler()
		go profiler.Run(profCtx)
		defer func() {
			// A final synchronous capture guarantees a hot-function report
			// even when the suite finishes inside the first interval.
			profiler.CaptureNow(context.Background(), prof.ReasonManual)
			reportHotFunctions(profiler)
			if *profOut != "" {
				writeProfileOut(*profOut, profiler)
			}
		}()
	}
	var tracer *trace.Tracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatalf("trace-out: %v", err)
		}
		jw := trace.NewJSONLWriter(f)
		defer func() {
			if err := jw.Flush(); err != nil {
				logger.Error("trace-out flush", "err", err)
			}
			if err := f.Close(); err != nil {
				logger.Error("trace-out close", "err", err)
			}
			logger.Info("wrote traces", "path", *traceOut)
		}()
		tracer = trace.New(jw, trace.NewHistogramSink(metrics))
	}
	if *metricsOut != "" {
		defer func() {
			f, err := os.Create(*metricsOut)
			if err != nil {
				logger.Error("metrics-out", "err", err)
				return
			}
			defer f.Close()
			if err := metrics.WritePrometheus(f); err != nil {
				logger.Error("metrics-out", "err", err)
				return
			}
			logger.Info("wrote metrics", "path", *metricsOut)
		}()
	}

	// Learning-curve telemetry: per-episode Q-learning signals plus model fit
	// losses. The recorder also mirrors onto the metrics registry, so the
	// dashboard shows the training curve live even without -curves-out.
	var curves *experiments.CurveRecorder
	if *curvesOut != "" || *dashAddr != "" {
		curves = experiments.NewCurveRecorder(metrics)
	}
	if *curvesOut != "" {
		defer func() {
			f, err := os.Create(*curvesOut)
			if err != nil {
				logger.Error("curves-out", "err", err)
				return
			}
			defer f.Close()
			recs := curves.Records()
			if err := experiments.WriteCurvesFile(f, *curvesOut, recs); err != nil {
				logger.Error("curves-out", "err", err)
				return
			}
			logger.Info("wrote learning curves", "path", *curvesOut, "records", len(recs))
		}()
	}

	// The live ops plane: a sampler over the suite's registry (plus Go
	// runtime telemetry) feeding an SSE stream and the self-contained HTML
	// dashboard. Pure observation — suite results are identical either way.
	if *dashAddr != "" {
		rc := obs.NewRuntimeCollector(metrics)
		sampler := obs.NewSampler(metrics, obs.SamplerOptions{OnTick: []func(){rc.Collect}})
		mux := http.NewServeMux()
		mux.Handle("GET /debug/dash", obs.DashHandler("/debug/metrics/stream"))
		mux.Handle("GET /debug/metrics/stream", obs.StreamHandler(sampler))
		mux.Handle("GET /metrics", obs.Handler(metrics))
		dashSrv := &http.Server{Addr: *dashAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			logger.Info("dashboard listening", "addr", *dashAddr, "path", "/debug/dash")
			if err := dashSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("dashboard", "err", err)
			}
		}()
		defer dashSrv.Close()
		sampleCtx, stopSampler := context.WithCancel(context.Background())
		defer stopSampler()
		go sampler.Run(sampleCtx)
	}

	// The live progress line goes to stderr only when it is a terminal:
	// redirected logs see one status line per repaint otherwise.
	var progress *experiments.Progress
	if !*quiet {
		if fi, err := os.Stderr.Stat(); err == nil && fi.Mode()&os.ModeCharDevice != 0 {
			progress = experiments.NewProgress(os.Stderr, time.Second)
		}
	}
	defer progress.Finish()
	// step announces one driver: it labels the progress line and stamps the
	// driver key on the log record.
	step := func(driver, msg string) {
		progress.SetLabel(driver)
		logger.Info(msg, "driver", driver)
	}

	base := experiments.DefaultParams()
	base.Seed = *seed
	if quick {
		base = base.Quick()
	}
	base.Parallel = *parallel
	base.Tracer = tracer
	base.Progress = progress
	base.Metrics = metrics

	if run("table2") {
		printTable2()
	}
	if run("table3") {
		printTable3(*seed, quick)
	}
	if run("lemmas") {
		printLemmas()
	}

	needHarness := run("table6") || run("fig3") || run("fig4") || run("fig5") || run("fig6") || run("fig7") || run("ablation") || run("rendezvous") || run("commrange")
	var h *experiments.Harness
	if needHarness {
		logger.Info("training Approx-MaMoRL (Section 4.2 pipeline)")
		cfg := approx.TrainConfig{Seed: *seed, Tracer: tracer, FitWorkers: *trainWorkers}
		if curves != nil {
			cfg.OnEpisode = curves.OnEpisode
		}
		var err error
		h, err = experiments.NewHarness(cfg)
		if err != nil {
			fatalf("harness: %v", err)
		}
		curves.RecordHarnessFits(h)
	}

	if run("table6") {
		step("table6", "running Table 6 (algorithm comparison; exact MaMoRL rows may take a while)")
		start := time.Now()
		rows, err := h.RunTable6(ctx, base)
		if err != nil {
			fail("table 6", err)
		}
		fmt.Println("=== Table 6: Comparison Among Implemented Algorithms ===")
		fmt.Print(experiments.FormatTable6(rows))
		writeCSV("table6.csv", func(w io.Writer) error { return experiments.WriteTable6CSV(w, rows) })
		logger.Info("table 6 done", "driver", "table6", "elapsed", time.Since(start))
	}

	if run("fig3") {
		step("fig3", "running Figure 3 (Approx vs NN-Approx)")
		p := base
		p.Nodes, p.Edges, p.MaxOutDegree, p.Assets, p.MaxSpeed = 200, 430, 8, 2, 3
		// Table 5's full budget is batch 1000 / 10000 epochs; -nn-epochs
		// bounds the run regardless of -paperscale so the suite stays
		// interactive (pass -nn-epochs 10000 for the full budget).
		opts := neural.TrainOptions{Epochs: *nnEpochs, BatchSize: 256, LearningRate: 0.05, Workers: *trainWorkers}
		if *paperscale {
			opts.BatchSize = neural.DefaultBatchSize
		}
		r, err := h.RunFigure3(ctx, p, opts, *seed)
		if err != nil {
			fail("figure 3", err)
		}
		curves.RecordFigure3Fits(r)
		fmt.Println("=== Figure 3 ===")
		fmt.Print(experiments.FormatFigure3(r))
	}

	if run("fig4") {
		step("fig4", "running Figure 4 (Pareto front)")
		r, err := h.RunFigure4(ctx, base)
		if err != nil {
			fail("figure 4", err)
		}
		fmt.Println("=== Figure 4 ===")
		fmt.Print(experiments.FormatFigure4(r))
		writeCSV("figure4_pareto.csv", func(w io.Writer) error { return experiments.WriteParetoCSV(w, r) })
	}

	var sweeps []experiments.SweepResult
	if run("fig5") || run("fig7") {
		step("fig5", "running Figure 5/7 sweeps (Approx-MaMoRL)")
		var err error
		sweeps, err = h.RunSweeps(ctx, experiments.AlgoApprox, base, quick)
		if err != nil {
			fail("figure 5/7 sweeps", err)
		}
	}
	if run("fig5") {
		fmt.Println("=== Figure 5 ===")
		fmt.Print(experiments.FormatSweeps("Figure 5", experiments.AlgoApprox, sweeps))
		writeCSV("figure5_7_sweeps.csv", func(w io.Writer) error {
			return experiments.WriteSweepsCSV(w, experiments.AlgoApprox, sweeps)
		})
	}
	if run("fig6") {
		step("fig6", "running Figure 6 sweeps (partial knowledge)")
		pkSweeps, err := h.RunSweeps(ctx, experiments.AlgoApproxPK, base, quick)
		if err != nil {
			fail("figure 6 sweeps", err)
		}
		fmt.Println("=== Figure 6 ===")
		fmt.Print(experiments.FormatSweeps("Figure 6", experiments.AlgoApproxPK, pkSweeps))
		writeCSV("figure6_sweeps.csv", func(w io.Writer) error {
			return experiments.WriteSweepsCSV(w, experiments.AlgoApproxPK, pkSweeps)
		})
	}
	if run("fig7") {
		fmt.Println("=== Figure 7 ===")
		fmt.Print(experiments.FormatFigure7(experiments.AlgoApprox, sweeps))
	}

	if run("rendezvous") {
		step("rendezvous", "running the rendezvous study (search + gather)")
		rows, err := h.RunRendezvous(ctx, base)
		if err != nil {
			fail("rendezvous", err)
		}
		fmt.Println("=== Rendezvous (ours; Definition 2 taken to the gathering point) ===")
		fmt.Print(experiments.FormatRendezvous(rows))
	}

	if run("commrange") {
		step("commrange", "running the comm-range study")
		points, err := h.RunCommRange(ctx, base, nil)
		if err != nil {
			fail("comm range", err)
		}
		fmt.Println("=== Comm range (ours; Section 2.4.1's limited communication) ===")
		fmt.Print(experiments.FormatCommRange(points))
	}

	if run("ablation") {
		step("ablation", "running the ablation study (deployment mechanisms)")
		p := base
		p.Assets = 6 // collision-relevant mechanisms need a crowd
		results, err := h.RunAblation(ctx, p)
		if err != nil {
			fail("ablation", err)
		}
		fmt.Println("=== Ablation (not in the paper; see DESIGN.md §2) ===")
		fmt.Print(experiments.FormatAblation(results))
	}

	if run("fig8") {
		step("fig8", "running Figure 8 (transfer learning; builds both basin meshes)")
		carib, err := grid.CaribbeanGrid(*seed)
		if err != nil {
			fatalf("caribbean: %v", err)
		}
		naShore, err := grid.NorthAmericaShoreGrid(*seed)
		if err != nil {
			fatalf("na shore: %v", err)
		}
		runs := 10
		if quick {
			runs = 3
		}
		r, err := experiments.RunFigure8(ctx, carib, naShore, experiments.Figure8Options{
			Runs: runs, Seed: *seed, Parallel: *parallel,
			Tracer: tracer, Progress: progress,
		})
		if err != nil {
			fail("figure 8", err)
		}
		fmt.Println("=== Figure 8 ===")
		fmt.Print(experiments.FormatFigure8(r))
		writeCSV("figure8_transfer.csv", func(w io.Writer) error { return experiments.WriteTransferCSV(w, r) })
	}
}

// reportHotFunctions prints the hottest functions from the newest finished
// capture, preferring the CPU table and falling back to whichever table has
// samples (short suites can finish before the CPU window sees any).
func reportHotFunctions(p *prof.Profiler) {
	for _, cs := range p.Snapshot() {
		c, ok := p.Get(cs.ID)
		if !ok || c.State != "done" {
			continue
		}
		var best *prof.Table
		for i := range c.Tables {
			t := &c.Tables[i]
			if t.Kind == "cpu" && t.Total > 0 && len(t.Funcs) > 0 {
				best = t
				break
			}
			if best == nil && t.Total > 0 && len(t.Funcs) > 0 {
				best = t
			}
		}
		if best == nil {
			continue
		}
		fmt.Printf("=== Hot functions (capture %s, %s profile, %s) ===\n", c.ID, best.Kind, best.Unit)
		for _, f := range best.Funcs[:min(10, len(best.Funcs))] {
			fmt.Printf("%6.1f%% flat %6.1f%% cum  %s\n", f.FlatPct, f.CumPct, f.Name)
		}
		return
	}
	logger.Info("no finished profile capture to report")
}

// writeProfileOut persists every retained capture (newest first, tables only,
// no raw profiles) as JSON for benchjson -profdiff.
func writeProfileOut(path string, p *prof.Profiler) {
	captures := make([]prof.Capture, 0, len(p.Snapshot()))
	for _, cs := range p.Snapshot() {
		if c, ok := p.Get(cs.ID); ok {
			captures = append(captures, c)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		logger.Error("profile-out", "err", err)
		return
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(captures); err != nil {
		logger.Error("profile-out", "err", err)
		return
	}
	logger.Info("wrote profile captures", "path", path, "captures", len(captures))
}
