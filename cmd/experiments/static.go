package main

import (
	"fmt"

	"github.com/routeplanning/mamorl/internal/core"
	"github.com/routeplanning/mamorl/internal/grid"
	"github.com/routeplanning/mamorl/internal/sim"
	"github.com/routeplanning/mamorl/internal/vessel"
)

// printTable2 reproduces the toy example's Table 2: time and fuel per speed
// for both assets (edge weights 2 and 2.24).
func printTable2() {
	fmt.Println("=== Table 2: Time and fuel consumption of the Assets (toy example) ===")
	fmt.Printf("%-8s %-8s %-10s %-10s %-10s\n", "asset", "speed", "time", "fuel", "average")
	for _, row := range []struct {
		asset  string
		weight float64
		maxSp  int
	}{
		{"Asset1", 2.0, 3},
		{"Asset2", 2.24, 2},
	} {
		for s := 1; s <= row.maxSp; s++ {
			tm := vessel.MoveTime(row.weight, float64(s))
			fu := vessel.MoveFuel(row.weight, float64(s))
			fmt.Printf("%-8s %-8d %-10.4f %-10.4f %-10.4f\n", row.asset, s, tm, fu, (tm+fu)/2)
		}
	}
	fmt.Println("(Asset1 speed-3 fuel is 4.7764 under the consistent model; the paper's 4.7286 is a typo — see EXPERIMENTS.md)")
	fmt.Println()
}

// printTable3 regenerates the three datasets and reports their statistics.
func printTable3(seed int64, quick bool) {
	fmt.Println("=== Table 3: Datasets Description ===")
	fmt.Printf("%-26s %8s %8s %8s\n", "Region", "|V|", "|E|", "Dmax")
	type gen struct {
		name string
		f    func(int64) (*grid.Grid, error)
	}
	gens := []gen{
		{"Caribbean Grid", grid.CaribbeanGrid},
		{"North America Shore Grid", grid.NorthAmericaShoreGrid},
		{"Atlantic Grid", grid.AtlanticGrid},
	}
	if quick {
		gens = gens[:2] // the Atlantic mesh takes a while; -paperscale builds it
	}
	for _, g := range gens {
		gr, err := g.f(seed)
		if err != nil {
			fatalf("table 3: %s: %v", g.name, err)
		}
		st := gr.Stats()
		fmt.Printf("%-26s %8d %8d %8d\n", g.name, st.Nodes, st.Edges, st.MaxOutDegree)
	}
	fmt.Println()
}

// printLemmas reports the dense P/Q table sizes (Lemmata 1-2) for Table 6's
// scenarios, reproducing the memory-bottleneck analysis.
func printLemmas() {
	fmt.Println("=== Lemmata 1-2: dense P/Q table sizes for Table 6's scenarios ===")
	fmt.Printf("%-26s %14s %14s\n", "Scenario (sp=5)", "|P| bytes", "|Q| bytes")
	for _, s := range []struct {
		label   string
		v, d, n int
	}{
		{"|V|=704 |N|=2 Dmax=7", 704, 7, 2},
		{"|V|=400 |N|=3 Dmax=9", 400, 9, 3},
		{"|V|=400 |N|=2 Dmax=6", 400, 6, 2},
		{"|V|=200 |N|=2 Dmax=9", 200, 9, 2},
	} {
		actions := sim.ActionCount(s.d, 5)
		p := core.PTableBytes(s.v, s.n, actions, 5)
		q := core.QTableBytes(s.v, s.n, actions, 5)
		fmt.Printf("%-26s %14s %14s\n", s.label, core.FormatBytes(p), core.FormatBytes(q))
	}
	fmt.Println("(the paper reports 205 GB and 17000 TB for the two infeasible rows)")
	fmt.Println()
}
