// Command gridgen generates maritime planning grids: synthetic random
// geometric graphs (the paper's NetworkX-style synthetic data) and
// procedural ocean meshes including the three Table 3 presets.
//
// Usage:
//
//	gridgen -type synthetic -nodes 400 -edges 846 -maxdeg 9 -out grid.json
//	gridgen -type caribbean -out caribbean.json
//	gridgen -type ocean -nodes 1000 -edges 2300 -out basin.json
package main

import (
	"flag"
	"fmt"
	"os"

	mamorl "github.com/routeplanning/mamorl"
)

func main() {
	var (
		typ     = flag.String("type", "synthetic", "grid type: synthetic, ocean, caribbean, na-shore, atlantic")
		name    = flag.String("name", "", "grid name (defaults per type)")
		nodes   = flag.Int("nodes", 400, "number of nodes (synthetic/ocean)")
		edges   = flag.Int("edges", 846, "number of undirected edges (synthetic/ocean)")
		maxDeg  = flag.Int("maxdeg", 9, "maximum out-degree (synthetic; ocean meshes use 6)")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "output JSON path (required)")
		preview = flag.Bool("preview", false, "print an ASCII map of the generated grid")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "gridgen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	g, err := generate(*typ, *name, *nodes, *edges, *maxDeg, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridgen: %v\n", err)
		os.Exit(1)
	}
	if err := mamorl.SaveGrid(*out, g); err != nil {
		fmt.Fprintf(os.Stderr, "gridgen: save: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %v\n", *out, g.Stats())
	if *preview {
		fmt.Print(mamorl.RenderGrid(g, nil, 72, 24))
	}
}

func generate(typ, name string, nodes, edges, maxDeg int, seed int64) (*mamorl.Grid, error) {
	switch typ {
	case "synthetic":
		return mamorl.GenerateSyntheticGrid(mamorl.SyntheticConfig{
			Name: name, Nodes: nodes, Edges: edges, MaxOutDegree: maxDeg, Seed: seed,
		})
	case "ocean":
		if name == "" {
			name = "ocean"
		}
		return mamorl.GenerateOceanMesh(mamorl.OceanMeshConfig{
			Name: name, Region: mamorl.NewRect(
				mamorl.Point{X: -90, Y: 8}, mamorl.Point{X: -58, Y: 28},
			),
			Nodes: nodes, Edges: edges, Seed: seed,
		})
	case "caribbean":
		return mamorl.CaribbeanGrid(seed)
	case "na-shore":
		return mamorl.NorthAmericaShoreGrid(seed)
	case "atlantic":
		return mamorl.AtlanticGrid(seed)
	default:
		return nil, fmt.Errorf("unknown grid type %q", typ)
	}
}
