package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/routeplanning/mamorl/internal/grid"
	"github.com/routeplanning/mamorl/internal/slo"
	"github.com/routeplanning/mamorl/internal/tmplar"
)

// newTestServer boots a real in-process tmplard (trained model, job queue,
// SLO engine, sampler loop) behind httptest and hands back its base URL.
func newTestServer(t *testing.T, opts tmplar.Options) string {
	t.Helper()
	if opts.SampleInterval == 0 {
		opts.SampleInterval = 50 * time.Millisecond
	}
	s, err := tmplar.NewServerOpts(17, opts)
	if err != nil {
		t.Fatalf("NewServerOpts: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	g, err := grid.GenerateSynthetic(grid.SyntheticConfig{
		Name: "ops-area", Nodes: 150, Edges: 330, MaxOutDegree: 8, Seed: 4,
	})
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	s.InstallGrid(g)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go s.Sampler().Run(ctx)
	go s.Profiler().Run(ctx) // nil-safe no-op unless opts enable profiling
	return ts.URL
}

// TestSmoke is the CI smoke stage: a short open-loop run against a healthy
// in-process tmplard must complete real missions over both planes and pass
// every default SLO. The continuous profiler runs throughout, so the pass
// also bounds profiling overhead: captures every 500ms during the load must
// not push any SLO past its objective.
func TestSmoke(t *testing.T) {
	url := newTestServer(t, tmplar.Options{
		ProfileInterval: 500 * time.Millisecond,
		ProfileWindow:   100 * time.Millisecond,
	})
	rep, err := Run(context.Background(), Config{
		Target:       url,
		Duration:     2 * time.Second,
		RPS:          20,
		Concurrency:  16,
		Grid:         "ops-area",
		AssetCounts:  []int{1, 2},
		Destination:  140,
		JobsRatio:    0.25,
		Seed:         1,
		PollInterval: 5 * time.Millisecond,
		Settle:       200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.Pass {
		t.Fatalf("healthy run failed: %v\n%+v", rep.Reasons, rep)
	}
	if rep.Completed == 0 || rep.OK == 0 {
		t.Fatalf("no traffic completed: %+v", rep)
	}
	if rep.AchievedRPS <= 0 {
		t.Errorf("achieved RPS = %v", rep.AchievedRPS)
	}
	if rep.LatencyP50 <= 0 || rep.LatencyP99 < rep.LatencyP50 {
		t.Errorf("suspicious percentiles: p50 %v p99 %v", rep.LatencyP50, rep.LatencyP99)
	}
	if rep.Status["200"] == 0 {
		t.Errorf("no synchronous 200s: %v", rep.Status)
	}
	if rep.Status["job:done"] == 0 {
		t.Errorf("no async jobs settled: %v", rep.Status)
	}
	if len(rep.SLOs) != 3 || len(rep.Verdicts) != 3 {
		t.Fatalf("expected 3 default SLOs judged, got %d/%d", len(rep.SLOs), len(rep.Verdicts))
	}
	for _, v := range rep.Verdicts {
		if !v.Pass {
			t.Errorf("SLO %q failed on a healthy server: %+v", v.Name, v)
		}
	}
	// The /metrics scrape reconciles: the server saw our plan traffic.
	if rep.ServerRequests["/api/plan"] == 0 {
		t.Errorf("server request scrape missing /api/plan: %v", rep.ServerRequests)
	}
	// The runtime scrape captured the server's post-load health gauges.
	if rt := rep.ServerRuntime; rt == nil {
		t.Error("report lacks server_runtime")
	} else if rt.HeapBytes <= 0 || rt.Goroutines <= 0 {
		t.Errorf("implausible server runtime: %+v", rt)
	}
	// The report round-trips as JSON for machine consumers.
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil || back.Sent != rep.Sent {
		t.Fatalf("report does not round-trip: %v", err)
	}
}

// TestMultiTenantSmoke exercises the multi-tenant mixer against a real
// server registering a model artifact: two grids crossed with the default
// model and the artifact ID give four tenants, each of which must complete
// traffic and show up in the per-tenant report, and the catalog scrape must
// show the four-entry working set served mostly from cache.
func TestMultiTenantSmoke(t *testing.T) {
	s, err := tmplar.NewServerOpts(17, tmplar.Options{
		ModelDir:       t.TempDir(),
		SampleInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewServerOpts: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	_, artifact := s.ModelSource()
	if artifact == "" {
		t.Fatal("server with a ModelDir registered no artifact")
	}
	for i, name := range []string{"alpha", "bravo"} {
		g, err := grid.GenerateSynthetic(grid.SyntheticConfig{
			Name: name, Nodes: 120, Edges: 260, MaxOutDegree: 8, Seed: int64(40 + i),
		})
		if err != nil {
			t.Fatalf("grid %s: %v", name, err)
		}
		s.InstallGrid(g)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go s.Sampler().Run(ctx)

	rep, err := Run(context.Background(), Config{
		Target:       ts.URL,
		Duration:     2 * time.Second,
		RPS:          20,
		Concurrency:  16,
		Grids:        []string{"alpha", "bravo"},
		Models:       []string{"", artifact},
		AssetCounts:  []int{1, 2},
		JobsRatio:    0.25,
		Seed:         1,
		PollInterval: 5 * time.Millisecond,
		Settle:       200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.Pass {
		t.Fatalf("healthy multi-tenant run failed: %v\n%+v", rep.Reasons, rep)
	}
	if len(rep.Tenants) != 4 {
		t.Fatalf("tenant reports = %d, want 4 (2 grids x 2 models): %+v", len(rep.Tenants), rep.Tenants)
	}
	for _, tn := range rep.Tenants {
		if tn.Completed == 0 || tn.OK == 0 {
			t.Errorf("tenant %s/%s starved: %+v", tn.Grid, tn.Model, tn)
		}
		if tn.LatencyP50 <= 0 || tn.LatencyP99 < tn.LatencyP50 {
			t.Errorf("tenant %s/%s suspicious percentiles: %+v", tn.Grid, tn.Model, tn)
		}
	}
	c := rep.Catalog
	if c == nil {
		t.Fatal("report lacks catalog stats")
	}
	// Four tenants fit the default capacity, so after the four cold loads
	// every request is a cache hit.
	if c.Loads != 4 {
		t.Errorf("catalog loads = %d, want 4 (one per tenant)", c.Loads)
	}
	if c.Hits == 0 || c.HitRate <= 0.5 {
		t.Errorf("catalog hit rate = %v (%d hits / %d misses), want mostly hits", c.HitRate, c.Hits, c.Misses)
	}
	if c.Evictions != 0 {
		t.Errorf("catalog evicted %d entries with a working set under capacity", c.Evictions)
	}
}

// TestFailsOnInducedBreach is the acceptance scenario: a deadline pinned
// below any achievable planning latency turns every plan into a 503, the
// availability SLO breaches, and the run reports failure (the binary's
// non-zero exit) with the exemplar trace in the detail.
func TestFailsOnInducedBreach(t *testing.T) {
	url := newTestServer(t, tmplar.Options{PlanTimeout: time.Nanosecond})
	rep, err := Run(context.Background(), Config{
		Target:      url,
		Duration:    time.Second,
		RPS:         30,
		Concurrency: 16,
		Grid:        "ops-area",
		Destination: 140,
		JobsRatio:   0,
		Settle:      300 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Pass {
		t.Fatalf("run passed despite universal 503s: %+v", rep)
	}
	if rep.Errors == 0 || rep.Status["503"] == 0 {
		t.Fatalf("expected 503s, got %v", rep.Status)
	}
	var avail *Verdict
	for i := range rep.Verdicts {
		if rep.Verdicts[i].Name == "plan-availability" {
			avail = &rep.Verdicts[i]
		}
	}
	if avail == nil {
		t.Fatalf("no plan-availability verdict: %+v", rep.Verdicts)
	}
	if avail.Pass || avail.State != "breach" {
		t.Fatalf("plan-availability verdict = %+v, want failed breach", avail)
	}
	if !strings.Contains(avail.Detail, "exemplar trace ") {
		t.Errorf("breach detail lacks the exemplar trace ID: %q", avail.Detail)
	}
	if len(rep.Reasons) == 0 {
		t.Error("failing report carries no reasons")
	}
}

// TestOpenLoopShedding drives a stub server slower than the offered rate
// and checks the generator sheds instead of queueing. The stub also proves
// loadgen runs against anything speaking the wire format.
func TestOpenLoopShedding(t *testing.T) {
	var inflight, maxInflight int
	var mu sync.Mutex
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/grids", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(`[{"name":"g","nodes":100}]`))
	})
	mux.HandleFunc("POST /api/plan", func(w http.ResponseWriter, _ *http.Request) {
		mu.Lock()
		inflight++
		if inflight > maxInflight {
			maxInflight = inflight
		}
		mu.Unlock()
		time.Sleep(150 * time.Millisecond)
		mu.Lock()
		inflight--
		mu.Unlock()
		_, _ = w.Write([]byte(`{"found":true}`))
	})
	mux.HandleFunc("GET /debug/slo", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(`{"t":"2026-01-01T00:00:00Z","slos":[]}`))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(`{}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		Target:      ts.URL,
		Duration:    600 * time.Millisecond,
		RPS:         100,
		Concurrency: 2,
		Grid:        "g",
		SLOs:        []slo.Spec{}, // stub reports no SLOs; judge none
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Shed == 0 {
		t.Fatalf("expected shedding at 100 rps over 2 slots of 150ms work: %+v", rep)
	}
	if maxInflight > 2 {
		t.Fatalf("concurrency cap violated: %d in flight", maxInflight)
	}
	if rep.Completed == 0 || !rep.Pass {
		t.Fatalf("completed=%d pass=%v reasons=%v", rep.Completed, rep.Pass, rep.Reasons)
	}
	if rep.Sent != rep.Shed+rep.Completed {
		t.Errorf("accounting leak: sent %d != shed %d + completed %d", rep.Sent, rep.Shed, rep.Completed)
	}
}

// TestMissingSLOFailsClosed: judging against a spec the server does not
// report must fail the run, not silently pass it.
func TestMissingSLOFailsClosed(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/grids", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(`[{"name":"g","nodes":50}]`))
	})
	mux.HandleFunc("POST /api/plan", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(`{"found":true}`))
	})
	mux.HandleFunc("GET /debug/slo", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(`{"t":"2026-01-01T00:00:00Z","slos":[]}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		Target:   ts.URL,
		Duration: 100 * time.Millisecond,
		RPS:      10,
		Grid:     "g",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Pass {
		t.Fatalf("passed with every default SLO missing: %+v", rep)
	}
	if len(rep.Verdicts) != len(slo.Defaults()) {
		t.Fatalf("verdicts = %d, want one per default spec", len(rep.Verdicts))
	}
	for _, v := range rep.Verdicts {
		if v.Pass || v.State != "missing" {
			t.Errorf("verdict %+v, want failed missing", v)
		}
	}
}

func TestMixerDeterministicRatio(t *testing.T) {
	count := func(ratio float64, n int) int {
		m := mixer{ratio: ratio}
		c := 0
		for i := 0; i < n; i++ {
			if m.next() {
				c++
			}
		}
		return c
	}
	if got := count(0.25, 8); got != 2 {
		t.Errorf("ratio 0.25 over 8 = %d jobs, want 2", got)
	}
	if got := count(0, 100); got != 0 {
		t.Errorf("ratio 0 = %d jobs, want 0", got)
	}
	if got := count(1, 7); got != 7 {
		t.Errorf("ratio 1 = %d jobs, want 7", got)
	}
	// Two mixers with the same ratio agree step for step.
	a, b := mixer{ratio: 0.3}, mixer{ratio: 0.3}
	for i := 0; i < 50; i++ {
		if a.next() != b.next() {
			t.Fatalf("mix diverged at step %d", i)
		}
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(s, 0.50); got != 5 {
		t.Errorf("p50 = %v", got)
	}
	if got := percentile(s, 0.90); got != 9 {
		t.Errorf("p90 = %v", got)
	}
	if got := percentile(s, 0.99); got != 10 {
		t.Errorf("p99 = %v", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := percentile([]float64{7}, 0.99); got != 7 {
		t.Errorf("single = %v", got)
	}
}

func TestConfigValidation(t *testing.T) {
	base := func() Config { return Config{Target: "http://x", Grid: "g"} }
	ok := base()
	if err := ok.normalize(); err != nil {
		t.Fatalf("minimal config rejected: %v", err)
	}
	if ok.RPS != 50 || ok.Concurrency != 64 || ok.FailOn != "breach" || len(ok.SLOs) == 0 {
		t.Errorf("defaults not applied: %+v", ok)
	}
	for name, mutate := range map[string]func(*Config){
		"no target":   func(c *Config) { c.Target = "" },
		"no grid":     func(c *Config) { c.Grid = "" },
		"bad ratio":   func(c *Config) { c.JobsRatio = 1.5 },
		"bad fail-on": func(c *Config) { c.FailOn = "panic" },
		"zero assets": func(c *Config) { c.AssetCounts = []int{0} },
	} {
		c := base()
		mutate(&c)
		if err := c.normalize(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRequestShape(t *testing.T) {
	cfg := Config{Target: "http://x", Grid: "g", AssetCounts: []int{1, 3}, Seed: 10, DeadlineMS: 250}
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	tn := tenant{grid: "g", nodes: 150, dest: 140}
	r0 := cfg.request(0, tn)
	r1 := cfg.request(1, tn)
	if len(r0.Assets) != 1 || len(r1.Assets) != 3 {
		t.Fatalf("asset rotation broken: %d, %d", len(r0.Assets), len(r1.Assets))
	}
	if r0.Seed != 10 || r1.Seed != 11 {
		t.Errorf("seeds %d, %d want 10, 11", r0.Seed, r1.Seed)
	}
	if r1.Assets[0].Source == r1.Assets[2].Source {
		t.Errorf("sources not spread: %+v", r1.Assets)
	}
	for _, a := range r1.Assets {
		if a.Source < 0 || a.Source >= 150 {
			t.Errorf("source %d outside grid", a.Source)
		}
	}
	if r0.DeadlineMS != 250 || r0.Destination != 140 {
		t.Errorf("caps not carried: %+v", r0)
	}
}

func TestParseCounts(t *testing.T) {
	if got, err := parseCounts("1, 2,4"); err != nil || len(got) != 3 || got[2] != 4 {
		t.Errorf("parseCounts = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "-1", "x"} {
		if _, err := parseCounts(bad); err == nil {
			t.Errorf("parseCounts(%q) accepted", bad)
		}
	}
}
