// Command loadgen offers open-loop plan-request load to a live tmplard
// instance and judges the run against the service's SLOs.
//
// Requests launch on a fixed schedule derived from -rps regardless of how
// fast responses return, bounded by -concurrency in-flight slots; when every
// slot is busy the scheduled request is shed and counted rather than queued,
// so a slow server keeps facing the full offered rate exactly as it would in
// production. The scenario mix rotates team sizes (-assets), optionally caps
// per-mission deadlines (-deadline-ms) and steps (-max-steps), and routes a
// deterministic fraction of requests through the async job plane
// (-jobs-ratio) where latency is measured submit-to-settled.
//
// After the load window the generator scrapes GET /metrics?format=json and
// GET /debug/slo, folds the server-side SLO states into a compliance report
// (achieved RPS, client-observed p50/p90/p99, server runtime health — heap
// bytes, goroutines, GC pause p99 —, error budget consumed, one verdict per
// required SLO), prints the report as JSON on stdout, and exits:
//
//	0  every required SLO below the -fail-on level
//	1  compliance failure (report says why, including exemplar trace IDs)
//	2  the run itself could not execute
//
// Required SLOs default to the server's compiled-in set; -slo-config points
// at the same JSON spec format tmplard's -slo-config accepts.
//
// Example:
//
//	loadgen -target http://localhost:8080 -grid ops-area -rps 50 -duration 1m
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/routeplanning/mamorl/internal/slo"
)

func main() {
	var (
		target      = flag.String("target", "http://localhost:8080", "base URL of the tmplard instance under test")
		duration    = flag.Duration("duration", 30*time.Second, "how long to offer load")
		rps         = flag.Float64("rps", 50, "open-loop request rate")
		concurrency = flag.Int("concurrency", 64, "max in-flight requests; excess scheduled requests are shed")
		gridName    = flag.String("grid", "ops-area", "grid every mission plans on (must exist on the server)")
		gridsCSV    = flag.String("grids", "", "comma-separated grid rotation for multi-tenant runs (overrides -grid)")
		modelsCSV   = flag.String("models", "", "comma-separated model_id rotation crossed with the grids; empty entry = server default model")
		assets      = flag.String("assets", "2", "comma-separated team sizes the mix rotates through")
		destination = flag.Int("destination", -1, "destination node; negative derives one from the grid size")
		deadlineMS  = flag.Int64("deadline-ms", 0, "per-mission planning deadline in ms; 0 keeps the server default")
		maxSteps    = flag.Int("max-steps", 0, "per-mission step cap; 0 keeps the server default")
		jobsRatio   = flag.Float64("jobs-ratio", 0.25, "fraction of requests submitted via the async job plane")
		seed        = flag.Int64("seed", 1, "base mission seed; request i plans with seed+i")
		pollEvery   = flag.Duration("poll-interval", 50*time.Millisecond, "async job polling cadence")
		settle      = flag.Duration("settle", 3*time.Second, "pause before the final SLO scrape (>= one server sample interval)")
		failOn      = flag.String("fail-on", "breach", "SLO state that fails the run: warn or breach")
		sloConfig   = flag.String("slo-config", "", "JSON SLO spec file to judge against; empty uses the compiled-in defaults")
		verbose     = flag.Bool("v", false, "log run progress to stderr")
	)
	flag.Parse()

	assetCounts, err := parseCounts(*assets)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}
	var specs []slo.Spec
	if *sloConfig != "" {
		specs, err = slo.LoadFile(*sloConfig)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(2)
		}
	}
	logf := func(string, ...any) {}
	if *verbose {
		log.SetFlags(log.Ltime | log.Lmicroseconds)
		logf = log.Printf
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := Run(ctx, Config{
		Target:       *target,
		Duration:     *duration,
		RPS:          *rps,
		Concurrency:  *concurrency,
		Grid:         *gridName,
		Grids:        splitCSV(*gridsCSV),
		Models:       splitCSV(*modelsCSV),
		AssetCounts:  assetCounts,
		Destination:  *destination,
		DeadlineMS:   *deadlineMS,
		MaxSteps:     *maxSteps,
		JobsRatio:    *jobsRatio,
		Seed:         *seed,
		PollInterval: *pollEvery,
		Settle:       *settle,
		FailOn:       *failOn,
		SLOs:         specs,
		Logf:         logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rep)

	fmt.Fprintf(os.Stderr, "loadgen: sent %d shed %d completed %d (ok %d err %d throttled %d)\n",
		rep.Sent, rep.Shed, rep.Completed, rep.OK, rep.Errors, rep.Throttled)
	fmt.Fprintf(os.Stderr, "loadgen: achieved %.1f rps of %.1f target; p50 %s p90 %s p99 %s\n",
		rep.AchievedRPS, rep.TargetRPS,
		time.Duration(rep.LatencyP50*float64(time.Second)),
		time.Duration(rep.LatencyP90*float64(time.Second)),
		time.Duration(rep.LatencyP99*float64(time.Second)))
	for _, tn := range rep.Tenants {
		name := tn.Grid
		if tn.Model != "" {
			name += "/" + tn.Model
		}
		fmt.Fprintf(os.Stderr, "loadgen: tenant %-30s completed %d ok %d; p50 %s p90 %s p99 %s\n",
			name, tn.Completed, tn.OK,
			time.Duration(tn.LatencyP50*float64(time.Second)),
			time.Duration(tn.LatencyP90*float64(time.Second)),
			time.Duration(tn.LatencyP99*float64(time.Second)))
	}
	if c := rep.Catalog; c != nil {
		fmt.Fprintf(os.Stderr, "loadgen: catalog: %.1f%% hit rate (%d hits, %d misses, %d loads, %d evictions)\n",
			c.HitRate*100, c.Hits, c.Misses, c.Loads, c.Evictions)
	}
	if rt := rep.ServerRuntime; rt != nil {
		fmt.Fprintf(os.Stderr, "loadgen: server runtime: heap %.1f MiB, %d goroutines, gc pause p99 %s (%d cycles)\n",
			rt.HeapBytes/(1<<20), int(rt.Goroutines),
			time.Duration(rt.GCPauseP99*float64(time.Second)), int(rt.GCCycles))
	}
	for _, v := range rep.Verdicts {
		mark := "PASS"
		if !v.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(os.Stderr, "loadgen: SLO %-20s %s state=%s budget_consumed=%.1f%% %s\n",
			v.Name, mark, v.State, v.BudgetConsumed*100, v.Detail)
	}
	if !rep.Pass {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: %s\n", strings.Join(rep.Reasons, "; "))
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "loadgen: PASS")
}

// splitCSV splits a comma-separated flag, trimming whitespace and keeping
// empty entries (an empty model_id means "the default model").
func splitCSV(csv string) []string {
	if csv == "" {
		return nil
	}
	parts := strings.Split(csv, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseCounts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad asset count %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no asset counts in %q", csv)
	}
	return out, nil
}
