package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/routeplanning/mamorl/internal/slo"
)

// --- Wire types --------------------------------------------------------------
//
// loadgen is a client: it speaks tmplard's JSON wire format but deliberately
// does not import the server package. These mirrors are the contract an
// external front-end would code against.

type assetSpec struct {
	Source        int32   `json:"source"`
	SensingRadius float64 `json:"sensing_radius"`
	MaxSpeed      int     `json:"max_speed"`
}

type planRequest struct {
	Grid        string      `json:"grid"`
	ModelID     string      `json:"model_id,omitempty"`
	Assets      []assetSpec `json:"assets"`
	Destination int32       `json:"destination"`
	Seed        int64       `json:"seed"`
	MaxSteps    int         `json:"max_steps,omitempty"`
	DeadlineMS  int64       `json:"deadline_ms,omitempty"`
}

type jobView struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

type gridInfo struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
}

// --- Configuration -----------------------------------------------------------

// Config describes one load run. Zero values select production defaults.
type Config struct {
	// Target is the base URL of the tmplard instance under test.
	Target string
	// Duration is how long to offer load; RPS the open-loop request rate.
	Duration time.Duration
	RPS      float64
	// Concurrency bounds in-flight requests. A scheduled request that finds
	// every slot busy is shed and counted, never queued — offered load stays
	// open-loop.
	Concurrency int
	// Grid names the grid every mission plans on; it must exist on the
	// server (loadgen resolves its node count from GET /api/grids).
	Grid string
	// Grids, when set, replaces Grid with a multi-tenant rotation: request i
	// goes to tenant i mod (grids × models). Every grid must exist on the
	// server.
	Grids []string
	// Models is the model_id rotation crossed with Grids; "" selects the
	// server's default model. Empty means default-only.
	Models []string
	// AssetCounts is the per-request rotation of team sizes; sources are
	// spread evenly across the grid's node range.
	AssetCounts []int
	// Destination is the target node; negative derives one near the far end
	// of the node range.
	Destination int
	// DeadlineMS and MaxSteps cap each mission like the wire fields they
	// feed; zero leaves the server defaults in charge.
	DeadlineMS int64
	MaxSteps   int
	// JobsRatio is the fraction of requests submitted through the async
	// job plane (POST /api/jobs/plan + polling) instead of POST /api/plan.
	JobsRatio float64
	// Seed varies per request (Seed+i) so missions differ deterministically.
	Seed int64
	// PollInterval is the async-job polling cadence; PollGrace bounds how
	// long after the load window in-flight work may finish.
	PollInterval time.Duration
	PollGrace    time.Duration
	// Settle is the pause between end-of-load and the final SLO scrape, so
	// the server's sampler can run at least one evaluation over the traffic.
	Settle time.Duration
	// FailOn is the SLO state that fails the run: "breach" (default) or
	// "warn".
	FailOn string
	// SLOs are the objectives the run is judged against, matched by name
	// against the server's /debug/slo report. Nil selects slo.Defaults();
	// an empty non-nil slice disables SLO verdicts.
	SLOs []slo.Spec

	Client *http.Client
	Logf   func(format string, args ...any)
}

func (cfg *Config) normalize() error {
	cfg.Target = strings.TrimSuffix(cfg.Target, "/")
	if cfg.Target == "" {
		return fmt.Errorf("target URL required")
	}
	if len(cfg.Grids) == 0 {
		if cfg.Grid == "" {
			return fmt.Errorf("grid name required")
		}
		cfg.Grids = []string{cfg.Grid}
	}
	for _, g := range cfg.Grids {
		if g == "" {
			return fmt.Errorf("empty grid name in %v", cfg.Grids)
		}
	}
	if len(cfg.Models) == 0 {
		cfg.Models = []string{""}
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 30 * time.Second
	}
	if cfg.RPS <= 0 {
		cfg.RPS = 50
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 64
	}
	if len(cfg.AssetCounts) == 0 {
		cfg.AssetCounts = []int{2}
	}
	for _, n := range cfg.AssetCounts {
		if n <= 0 {
			return fmt.Errorf("asset counts must be positive, got %v", cfg.AssetCounts)
		}
	}
	if cfg.JobsRatio < 0 || cfg.JobsRatio > 1 {
		return fmt.Errorf("jobs ratio %v outside [0,1]", cfg.JobsRatio)
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 50 * time.Millisecond
	}
	if cfg.PollGrace <= 0 {
		cfg.PollGrace = 10 * time.Second
	}
	switch cfg.FailOn {
	case "":
		cfg.FailOn = "breach"
	case "warn", "breach":
	default:
		return fmt.Errorf("fail-on must be warn or breach, got %q", cfg.FailOn)
	}
	if cfg.SLOs == nil {
		cfg.SLOs = slo.Defaults()
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return nil
}

// tenant is one (grid, model) pair of the rotation, with the grid's resolved
// node count and derived destination.
type tenant struct {
	grid  string
	model string
	nodes int
	dest  int
}

// key labels a tenant in reports: "grid" for the default model,
// "grid/model" otherwise.
func (t tenant) key() string {
	if t.model == "" {
		return t.grid
	}
	return t.grid + "/" + t.model
}

// request builds the i-th mission deterministically: the tenant rotates
// through the grids × models cross product, team size through AssetCounts,
// sources spread across the node range, and the seed advances so no two
// missions are identical.
func (cfg *Config) request(i int, tn tenant) planRequest {
	n := cfg.AssetCounts[i%len(cfg.AssetCounts)]
	assets := make([]assetSpec, n)
	for j := range assets {
		assets[j] = assetSpec{
			Source:        int32(j * tn.nodes / (n + 1)),
			SensingRadius: 10,
			MaxSpeed:      3,
		}
	}
	return planRequest{
		Grid:        tn.grid,
		ModelID:     tn.model,
		Assets:      assets,
		Destination: int32(tn.dest),
		Seed:        cfg.Seed + int64(i),
		MaxSteps:    cfg.MaxSteps,
		DeadlineMS:  cfg.DeadlineMS,
	}
}

// mixer deterministically spreads a fraction across a request sequence:
// with ratio 0.25 every fourth next() is true, with no randomness to make
// two runs differ.
type mixer struct {
	ratio float64
	acc   float64
}

func (m *mixer) next() bool {
	m.acc += m.ratio
	if m.acc >= 1 {
		m.acc--
		return true
	}
	return false
}

// --- Result accounting -------------------------------------------------------

type outcome int

const (
	outcomeOK outcome = iota
	outcomeErr
	outcomeThrottled
)

// tenantAgg accumulates one tenant's slice of the run.
type tenantAgg struct {
	latencies []float64
	ok        int
	completed int
}

type recorder struct {
	mu        sync.Mutex
	latencies []float64
	status    map[string]int
	tenants   map[string]*tenantAgg
	ok        int
	errs      int
	throttled int
}

func newRecorder() *recorder {
	return &recorder{
		status:  make(map[string]int),
		tenants: make(map[string]*tenantAgg),
	}
}

func (r *recorder) record(seconds float64, tenantKey, label string, oc outcome) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.latencies = append(r.latencies, seconds)
	r.status[label]++
	ta := r.tenants[tenantKey]
	if ta == nil {
		ta = &tenantAgg{}
		r.tenants[tenantKey] = ta
	}
	ta.latencies = append(ta.latencies, seconds)
	ta.completed++
	switch oc {
	case outcomeOK:
		r.ok++
		ta.ok++
	case outcomeThrottled:
		r.throttled++
	default:
		r.errs++
	}
}

// percentile is nearest-rank over an ascending-sorted slice.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// --- Report ------------------------------------------------------------------

// Verdict is one SLO judged against the server's report.
type Verdict struct {
	Name           string  `json:"name"`
	State          string  `json:"state"`
	BudgetConsumed float64 `json:"budget_consumed"`
	Pass           bool    `json:"pass"`
	Detail         string  `json:"detail,omitempty"`
}

// ServerRuntime is the server-side runtime snapshot scraped from /metrics
// after the run — whether the process is healthy after the load, not just
// fast during it. Values come from the server's sampler-maintained gauges,
// so they reflect its most recent sample tick.
type ServerRuntime struct {
	HeapBytes  float64 `json:"heap_bytes"`
	Goroutines float64 `json:"goroutines"`
	GCPauseP99 float64 `json:"gc_pause_p99_seconds"`
	GCCycles   float64 `json:"gc_cycles"`
}

// TenantReport is one (grid, model) tenant's slice of the run: how much of
// the mix it received and its client-observed latency distribution.
type TenantReport struct {
	Grid       string  `json:"grid"`
	Model      string  `json:"model,omitempty"`
	Completed  int     `json:"completed"`
	OK         int     `json:"ok"`
	LatencyP50 float64 `json:"latency_p50_seconds"`
	LatencyP90 float64 `json:"latency_p90_seconds"`
	LatencyP99 float64 `json:"latency_p99_seconds"`
}

// CatalogStats is the server's planner-catalog health scraped from /metrics
// after the run. HitRate is hits/(hits+misses); a multi-tenant run whose
// working set fits the catalog should end near 1.
type CatalogStats struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	Loads     uint64  `json:"loads"`
	HitRate   float64 `json:"hit_rate"`
}

// Report is the compliance report a run ends with.
type Report struct {
	Target          string            `json:"target"`
	DurationSeconds float64           `json:"duration_seconds"`
	TargetRPS       float64           `json:"target_rps"`
	AchievedRPS     float64           `json:"achieved_rps"`
	Sent            int               `json:"sent"`
	Shed            int               `json:"shed"`
	Completed       int               `json:"completed"`
	OK              int               `json:"ok"`
	Errors          int               `json:"errors"`
	Throttled       int               `json:"throttled"`
	Status          map[string]int    `json:"status_counts"`
	LatencyP50      float64           `json:"latency_p50_seconds"`
	LatencyP90      float64           `json:"latency_p90_seconds"`
	LatencyP99      float64           `json:"latency_p99_seconds"`
	Tenants         []TenantReport    `json:"tenants,omitempty"`
	Catalog         *CatalogStats     `json:"catalog,omitempty"`
	ServerRequests  map[string]uint64 `json:"server_requests_by_route,omitempty"`
	ServerRuntime   *ServerRuntime    `json:"server_runtime,omitempty"`
	SLOs            []slo.Status      `json:"slos"`
	Verdicts        []Verdict         `json:"verdicts"`
	Pass            bool              `json:"pass"`
	Reasons         []string          `json:"reasons,omitempty"`
}

// --- HTTP plumbing -----------------------------------------------------------

func (cfg *Config) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, "GET", cfg.Target+path, nil)
	if err != nil {
		return err
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: %d %s", path, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// gridNodes resolves node counts for every grid of the rotation from the
// server's grid listing.
func (cfg *Config) gridNodes(ctx context.Context) (map[string]int, error) {
	var infos []gridInfo
	if err := cfg.getJSON(ctx, "/api/grids", &infos); err != nil {
		return nil, fmt.Errorf("list grids: %w", err)
	}
	byName := make(map[string]int, len(infos))
	names := make([]string, 0, len(infos))
	for _, gi := range infos {
		byName[gi.Name] = gi.Nodes
		names = append(names, gi.Name)
	}
	nodes := make(map[string]int, len(cfg.Grids))
	for _, g := range cfg.Grids {
		n, ok := byName[g]
		if !ok {
			return nil, fmt.Errorf("grid %q not on server (has %v)", g, names)
		}
		nodes[g] = n
	}
	return nodes, nil
}

func (cfg *Config) post(ctx context.Context, path string, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, "POST", cfg.Target+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, err
}

// fireSync issues one synchronous plan and records its client-observed
// latency and outcome.
func (cfg *Config) fireSync(ctx context.Context, pr planRequest, tkey string, rec *recorder) {
	body, _ := json.Marshal(pr)
	start := time.Now()
	code, _, err := cfg.post(ctx, "/api/plan", body)
	elapsed := time.Since(start).Seconds()
	switch {
	case err != nil:
		rec.record(elapsed, tkey, "transport_error", outcomeErr)
	case code == http.StatusTooManyRequests:
		rec.record(elapsed, tkey, "429", outcomeThrottled)
	case code >= 200 && code < 300:
		rec.record(elapsed, tkey, strconv.Itoa(code), outcomeOK)
	default:
		rec.record(elapsed, tkey, strconv.Itoa(code), outcomeErr)
	}
}

// fireJob submits through the async plane and polls the job to a terminal
// state; latency is submit-to-settled wall time, the shape a mission
// console experiences.
func (cfg *Config) fireJob(ctx context.Context, pr planRequest, tkey string, rec *recorder) {
	body, _ := json.Marshal(pr)
	start := time.Now()
	code, resp, err := cfg.post(ctx, "/api/jobs/plan", body)
	switch {
	case err != nil:
		rec.record(time.Since(start).Seconds(), tkey, "transport_error", outcomeErr)
		return
	case code == http.StatusTooManyRequests:
		rec.record(time.Since(start).Seconds(), tkey, "429", outcomeThrottled)
		return
	case code != http.StatusAccepted:
		rec.record(time.Since(start).Seconds(), tkey, strconv.Itoa(code), outcomeErr)
		return
	}
	var v jobView
	if err := json.Unmarshal(resp, &v); err != nil || v.ID == "" {
		rec.record(time.Since(start).Seconds(), tkey, "job:bad_submit", outcomeErr)
		return
	}
	t := time.NewTicker(cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			rec.record(time.Since(start).Seconds(), tkey, "job:timeout", outcomeErr)
			return
		case <-t.C:
		}
		var cur jobView
		if err := cfg.getJSON(ctx, "/api/jobs/"+v.ID, &cur); err != nil {
			// A 429 job view still decodes below; any other failure here is
			// a lost job.
			if ctx.Err() != nil {
				rec.record(time.Since(start).Seconds(), tkey, "job:timeout", outcomeErr)
			} else {
				rec.record(time.Since(start).Seconds(), tkey, "job:poll_error", outcomeErr)
			}
			return
		}
		switch cur.State {
		case "done":
			rec.record(time.Since(start).Seconds(), tkey, "job:done", outcomeOK)
			return
		case "failed", "canceled":
			rec.record(time.Since(start).Seconds(), tkey, "job:"+cur.State, outcomeErr)
			return
		}
	}
}

// scrapeServer folds /metrics?format=json into per-route request totals —
// the server-side view the client counts are reconciled against — and the
// runtime gauges the server's sampler maintains (nil until its first tick).
func (cfg *Config) scrapeServer(ctx context.Context) (map[string]uint64, *ServerRuntime, *CatalogStats) {
	var snap struct {
		Counters []struct {
			Name   string            `json:"name"`
			Value  uint64            `json:"value"`
			Labels map[string]string `json:"labels"`
		} `json:"counters"`
		Gauges []struct {
			Name   string            `json:"name"`
			Value  float64           `json:"value"`
			Labels map[string]string `json:"labels"`
		} `json:"gauges"`
	}
	if err := cfg.getJSON(ctx, "/metrics?format=json", &snap); err != nil {
		cfg.Logf("scrape /metrics: %v", err)
		return nil, nil, nil
	}
	byRoute := make(map[string]uint64)
	cat := &CatalogStats{}
	for _, c := range snap.Counters {
		switch c.Name {
		case "tmplar_http_requests_total":
			byRoute[c.Labels["endpoint"]] += c.Value
		case "catalog_hits_total":
			cat.Hits += c.Value
		case "catalog_misses_total":
			cat.Misses += c.Value
		case "catalog_evictions_total":
			cat.Evictions += c.Value
		case "catalog_loads_total":
			cat.Loads += c.Value
		}
	}
	if total := cat.Hits + cat.Misses; total > 0 {
		cat.HitRate = float64(cat.Hits) / float64(total)
	}
	var rt *ServerRuntime
	ensure := func() *ServerRuntime {
		if rt == nil {
			rt = &ServerRuntime{}
		}
		return rt
	}
	for _, g := range snap.Gauges {
		switch g.Name {
		case "go_heap_objects_bytes":
			ensure().HeapBytes = g.Value
		case "go_goroutines":
			ensure().Goroutines = g.Value
		case "go_gc_cycles_total":
			ensure().GCCycles = g.Value
		case "go_gc_pause_seconds":
			if g.Labels["q"] == "0.99" {
				ensure().GCPauseP99 = g.Value
			}
		}
	}
	return byRoute, rt, cat
}

func stateLevel(s string) int {
	switch s {
	case "ok":
		return 0
	case "warn":
		return 1
	default: // breach or anything unrecognized fails safe
		return 2
	}
}

// --- The run -----------------------------------------------------------------

// Run offers cfg.Duration of open-loop load, then scrapes the server and
// judges the run. The returned report is complete even when Pass is false;
// a non-nil error means the run itself could not execute.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	nodesByGrid, err := cfg.gridNodes(ctx)
	if err != nil {
		return nil, err
	}
	// Build the tenant rotation: grids × models, each with a per-grid
	// destination (an explicit -destination must fit every grid).
	var tenants []tenant
	for _, g := range cfg.Grids {
		nodes := nodesByGrid[g]
		dest := cfg.Destination
		if dest < 0 {
			dest = nodes - 1
			if nodes > 10 {
				dest = nodes - 10
			}
		}
		if dest < 0 || dest >= nodes {
			return nil, fmt.Errorf("destination %d outside grid %q of %d nodes", dest, g, nodes)
		}
		for _, m := range cfg.Models {
			tenants = append(tenants, tenant{grid: g, model: m, nodes: nodes, dest: dest})
		}
	}
	cfg.Logf("target %s, %d tenant(s) (%v grids x %v models): %v rps for %v, %d in-flight max",
		cfg.Target, len(tenants), cfg.Grids, len(cfg.Models), cfg.RPS, cfg.Duration, cfg.Concurrency)

	rec := newRecorder()
	sem := make(chan struct{}, cfg.Concurrency)
	var wg sync.WaitGroup
	// In-flight work may outlive the offering window by PollGrace so slow
	// plans and queued jobs settle instead of being counted as timeouts.
	workCtx, cancelWork := context.WithTimeout(ctx, cfg.Duration+cfg.PollGrace)
	defer cancelWork()

	interval := time.Duration(float64(time.Second) / cfg.RPS)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	stop := time.NewTimer(cfg.Duration)
	defer stop.Stop()

	jobs := mixer{ratio: cfg.JobsRatio}
	start := time.Now()
	sent, shed := 0, 0
loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case <-stop.C:
			break loop
		case <-ticker.C:
			tn := tenants[sent%len(tenants)]
			pr := cfg.request(sent, tn)
			asJob := jobs.next()
			sent++
			select {
			case sem <- struct{}{}:
			default:
				// Open-loop discipline: a server too slow to drain the
				// in-flight window loses this request entirely.
				shed++
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				if asJob {
					cfg.fireJob(workCtx, pr, tn.key(), rec)
				} else {
					cfg.fireSync(workCtx, pr, tn.key(), rec)
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	if cfg.Settle > 0 {
		cfg.Logf("settling %v before the SLO scrape", cfg.Settle)
		select {
		case <-time.After(cfg.Settle):
		case <-ctx.Done():
		}
	}

	rep := &Report{
		Target:          cfg.Target,
		DurationSeconds: elapsed.Seconds(),
		TargetRPS:       cfg.RPS,
		Sent:            sent,
		Shed:            shed,
		Status:          rec.status,
		OK:              rec.ok,
		Errors:          rec.errs,
		Throttled:       rec.throttled,
	}
	rep.Completed = rec.ok + rec.errs + rec.throttled
	if elapsed > 0 {
		rep.AchievedRPS = float64(rep.Completed) / elapsed.Seconds()
	}
	sort.Float64s(rec.latencies)
	rep.LatencyP50 = percentile(rec.latencies, 0.50)
	rep.LatencyP90 = percentile(rec.latencies, 0.90)
	rep.LatencyP99 = percentile(rec.latencies, 0.99)
	// Per-tenant breakdown in rotation order, so reports diff cleanly.
	for _, tn := range tenants {
		ta := rec.tenants[tn.key()]
		if ta == nil {
			continue
		}
		sort.Float64s(ta.latencies)
		rep.Tenants = append(rep.Tenants, TenantReport{
			Grid:       tn.grid,
			Model:      tn.model,
			Completed:  ta.completed,
			OK:         ta.ok,
			LatencyP50: percentile(ta.latencies, 0.50),
			LatencyP90: percentile(ta.latencies, 0.90),
			LatencyP99: percentile(ta.latencies, 0.99),
		})
	}
	rep.ServerRequests, rep.ServerRuntime, rep.Catalog = cfg.scrapeServer(ctx)

	rep.Pass = true
	fail := func(format string, args ...any) {
		rep.Pass = false
		rep.Reasons = append(rep.Reasons, fmt.Sprintf(format, args...))
	}
	if sent > 0 && rep.Completed == 0 {
		fail("no requests completed (%d sent, %d shed)", sent, shed)
	}

	var sloRep slo.Report
	sloErr := cfg.getJSON(ctx, "/debug/slo", &sloRep)
	if sloErr != nil {
		if len(cfg.SLOs) > 0 {
			fail("scrape /debug/slo: %v", sloErr)
		}
	} else {
		rep.SLOs = sloRep.SLOs
	}
	failAt := stateLevel(cfg.FailOn)
	byName := make(map[string]slo.Status, len(rep.SLOs))
	for _, st := range rep.SLOs {
		byName[st.Name] = st
	}
	for _, sp := range cfg.SLOs {
		st, found := byName[sp.Name]
		if !found {
			if sloErr == nil {
				fail("SLO %q not reported by server", sp.Name)
			}
			rep.Verdicts = append(rep.Verdicts, Verdict{
				Name: sp.Name, State: "missing", Pass: false,
				Detail: "not reported by server",
			})
			continue
		}
		v := Verdict{
			Name:           st.Name,
			State:          st.State,
			BudgetConsumed: st.BudgetUsed,
			Pass:           stateLevel(st.State) < failAt,
		}
		if !v.Pass {
			detail := fmt.Sprintf("state %s at or past fail level %s", st.State, cfg.FailOn)
			if st.Exemplar != nil && st.Exemplar.TraceID != "" {
				detail += "; exemplar trace " + st.Exemplar.TraceID
			}
			v.Detail = detail
			fail("SLO %q: %s", st.Name, detail)
		}
		rep.Verdicts = append(rep.Verdicts, v)
	}
	return rep, nil
}
