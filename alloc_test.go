// Allocation regression tests for the planner hot path. The deployed
// Approx-MaMoRL planner makes one Decide call per asset per epoch; before the
// scratch-buffer rework it allocated ~36 objects per call (blocked map, alpha
// map, features slice, legal-action slice, sensing result). These tests pin
// the reworked numbers so a future change cannot quietly reintroduce per-call
// garbage.
package mamorl_test

import (
	"testing"

	"github.com/routeplanning/mamorl/internal/approx"
	"github.com/routeplanning/mamorl/internal/experiments"
	"github.com/routeplanning/mamorl/internal/grid"
	"github.com/routeplanning/mamorl/internal/limits"
	"github.com/routeplanning/mamorl/internal/sim"
)

// harnessT is the *testing.T twin of harness, sharing the once-trained
// sample source with the benchmarks.
func harnessT(t *testing.T) *experiments.Harness {
	t.Helper()
	benchOnce.Do(func() {
		benchH, benchHarnErr = experiments.NewHarness(approx.TrainConfig{Seed: 1})
	})
	if benchHarnErr != nil {
		t.Fatalf("harness: %v", benchHarnErr)
	}
	return benchH
}

func allocFixture(t *testing.T) (*sim.Mission, *approx.Planner, int) {
	t.Helper()
	h := harnessT(t)
	g, err := grid.GenerateSynthetic(grid.SyntheticConfig{Nodes: 400, Edges: 846, MaxOutDegree: 9, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := approx.TrainingScenario(g, 4, 5, 1.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	pl := approx.NewPlanner(h.Linear, h.Pipe.Extractor, 1)
	m, err := sim.NewMission(sc, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return m, pl, len(sc.Team)
}

// TestDecideAllocs: a warmed planner must average at most ~2 allocations per
// Decide call (the sensing query's exact-size result copy is the only
// remaining steady-state allocation; the frontier fallback path may add a
// handful on rare calls).
func TestDecideAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool bypass its cache, inflating the count")
	}
	m, pl, n := allocFixture(t)
	for i := 0; i < 64; i++ { // warm scratch buffers across all assets
		_ = pl.Decide(m, i%n)
	}
	i := 0
	avg := testing.AllocsPerRun(256, func() {
		_ = pl.Decide(m, i%n)
		i++
	})
	if avg > 2.5 {
		t.Fatalf("Decide allocates %.2f objects/call on average, want <= 2.5 (was ~36 before the scratch rework)", avg)
	}
}

// TestDecideWithBudgetAllocs: attaching a resource budget must add zero
// allocations to the Decide hot path — Charge is atomic-add accounting on a
// preallocated object, with the nil-receiver fast path covering the
// no-budget configuration (pinned separately in internal/limits).
func TestDecideWithBudgetAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool bypass its cache, inflating the count")
	}
	m, pl, n := allocFixture(t)
	pl.SetBudget(limits.New(limits.Limits{Nodes: 1 << 40}))
	for i := 0; i < 64; i++ {
		_ = pl.Decide(m, i%n)
	}
	i := 0
	avg := testing.AllocsPerRun(256, func() {
		_ = pl.Decide(m, i%n)
		i++
	})
	if avg > 2.5 {
		t.Fatalf("budgeted Decide allocates %.2f objects/call on average, want <= 2.5 (same pin as unbudgeted)", avg)
	}
}

// TestAppendLegalActionsForAllocs: the append variant with a warmed reusable
// buffer must not allocate at all.
func TestAppendLegalActionsForAllocs(t *testing.T) {
	m, _, n := allocFixture(t)
	buf := make([]sim.Action, 0, 64)
	i := 0
	avg := testing.AllocsPerRun(256, func() {
		buf = m.AppendLegalActionsFor(buf[:0], i%n)
		i++
	})
	if avg != 0 {
		t.Fatalf("AppendLegalActionsFor allocates %.2f objects/call, want 0", avg)
	}
}

// TestSensingQueryAllocs: WithinRadius must allocate only its exact-size
// result (the traversal scratch is pooled), and the ForEach variant nothing.
func TestSensingQueryAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool bypass its cache, inflating the count")
	}
	g, err := grid.CaribbeanGrid(5)
	if err != nil {
		t.Fatal(err)
	}
	r := 1.5 * g.AvgEdgeWeight()
	n := g.NumNodes()

	i := 0
	avg := testing.AllocsPerRun(256, func() {
		_ = g.WithinRadius(grid.NodeID(i%n), r)
		i++
	})
	if avg > 1 {
		t.Fatalf("WithinRadius allocates %.2f objects/call, want <= 1 (result slice only)", avg)
	}

	i = 0
	avg = testing.AllocsPerRun(256, func() {
		g.ForEachWithinRadius(grid.NodeID(i%n), r, func(grid.NodeID) {})
		i++
	})
	if avg != 0 {
		t.Fatalf("ForEachWithinRadius allocates %.2f objects/call, want 0", avg)
	}
}
