// Package mamorl is the public API of the MaMoRL cooperative route-planning
// framework — a from-scratch Go implementation of "Cooperative Route
// Planning Framework for Multiple Distributed Assets in Maritime
// Applications" (SIGMOD 2022).
//
// The framework plans routes for a team of distributed assets (ships,
// unmanned vehicles) searching a discrete maritime grid for a destination at
// an initially unknown location, minimizing total fuel and mission makespan
// while avoiding collisions (the Route Planning Problem, RPP). It contains:
//
//   - the exact MaMoRL solver over the Team Discrete MDP (NewExactPlanner),
//     tractable only on small instances — by design;
//   - Approx-MaMoRL, the deployable linear-regression approximation the
//     paper ships inside the Navy's TMPLAR tool (Train / Model.NewPlanner),
//     and its neural-network counterpart NN-Approx-MaMoRL;
//   - the partial-knowledge variant that routes assets to a known
//     destination region by Dijkstra before searching it;
//   - the paper's three baselines, grid generators (synthetic and
//     procedural ocean meshes matching the paper's datasets), the mission
//     simulator, and a TMPLAR-style JSON planning service.
//
// Quickstart:
//
//	g, _ := mamorl.GenerateSyntheticGrid(mamorl.SyntheticConfig{
//		Nodes: 400, Edges: 846, MaxOutDegree: 9, Seed: 1,
//	})
//	model, _ := mamorl.Train(mamorl.TrainConfig{Seed: 1})
//	sc, _ := mamorl.NewScenario(g, 4, 2.0, 3, 3) // 4 assets, radius 2, speed 3, comm k=3
//	res, _ := mamorl.Run(sc, model.NewPlanner(1), mamorl.RunOptions{})
//	fmt.Println(res)
package mamorl

import (
	"context"
	"errors"
	"io"

	"github.com/routeplanning/mamorl/internal/approx"
	"github.com/routeplanning/mamorl/internal/baselines"
	"github.com/routeplanning/mamorl/internal/core"
	"github.com/routeplanning/mamorl/internal/features"
	"github.com/routeplanning/mamorl/internal/geo"
	"github.com/routeplanning/mamorl/internal/graphalg"
	"github.com/routeplanning/mamorl/internal/grid"
	"github.com/routeplanning/mamorl/internal/neural"
	"github.com/routeplanning/mamorl/internal/obs"
	"github.com/routeplanning/mamorl/internal/partial"
	"github.com/routeplanning/mamorl/internal/registry"
	"github.com/routeplanning/mamorl/internal/render"
	"github.com/routeplanning/mamorl/internal/rewardfn"
	"github.com/routeplanning/mamorl/internal/sim"
	"github.com/routeplanning/mamorl/internal/slo"
	"github.com/routeplanning/mamorl/internal/tmplar"
	"github.com/routeplanning/mamorl/internal/vessel"
	"github.com/routeplanning/mamorl/internal/weather"
)

// Geometry.
type (
	// Point is a location: longitude/latitude for ocean grids, planar
	// coordinates for synthetic ones.
	Point = geo.Point
	// Rect is an axis-aligned region, used for partial destination
	// knowledge.
	Rect = geo.Rect
)

// NewRect builds the rectangle spanning two corners.
func NewRect(a, b Point) Rect { return geo.NewRect(a, b) }

// Grids.
type (
	// Grid is the discrete maritime grid G = (V, E).
	Grid = grid.Grid
	// NodeID identifies a grid node.
	NodeID = grid.NodeID
	// SyntheticConfig configures GenerateSyntheticGrid.
	SyntheticConfig = grid.SyntheticConfig
	// OceanMeshConfig configures GenerateOceanMesh.
	OceanMeshConfig = grid.OceanMeshConfig
)

// GenerateSyntheticGrid produces a connected random geometric graph with
// controlled |V|, |E| and maximum out-degree (the paper's synthetic data).
func GenerateSyntheticGrid(cfg SyntheticConfig) (*Grid, error) { return grid.GenerateSynthetic(cfg) }

// GenerateOceanMesh produces a procedural coastal mesh (the stand-in for
// the paper's GSHHG/Gmsh ocean grids; see DESIGN.md §3).
func GenerateOceanMesh(cfg OceanMeshConfig) (*Grid, error) { return grid.GenerateOceanMesh(cfg) }

// CaribbeanGrid generates the Caribbean dataset (710 nodes, 1684 edges).
func CaribbeanGrid(seed int64) (*Grid, error) { return grid.CaribbeanGrid(seed) }

// NorthAmericaShoreGrid generates the North America Shore dataset
// (3291 nodes, 7811 edges).
func NorthAmericaShoreGrid(seed int64) (*Grid, error) { return grid.NorthAmericaShoreGrid(seed) }

// AtlanticGrid generates the Atlantic dataset (14655 nodes, 35061 edges).
func AtlanticGrid(seed int64) (*Grid, error) { return grid.AtlanticGrid(seed) }

// LoadGrid reads a grid from a JSON file; SaveGrid writes one.
func LoadGrid(path string) (*Grid, error) { return grid.LoadFile(path) }
func SaveGrid(path string, g *Grid) error { return grid.SaveFile(path, g) }

// Assets and missions.
type (
	// Asset is one distributed asset: sensing radius, max speed, source.
	Asset = vessel.Asset
	// Team is an ordered set of assets.
	Team = vessel.Team
	// Scenario is a complete RPP instance.
	Scenario = sim.Scenario
	// Mission is a live episode (used by custom planners).
	Mission = sim.Mission
	// Action is one asset's per-epoch decision.
	Action = sim.Action
	// Planner decides one asset's action per epoch.
	Planner = sim.Planner
	// RunOptions tunes a mission run.
	RunOptions = sim.RunOptions
	// Result summarizes a finished mission.
	Result = sim.Result
	// Weights scalarizes the multi-objective reward.
	Weights = rewardfn.Weights
	// Trace records a mission epoch by epoch (install Trace.Record as
	// RunOptions.OnStep); see sim.Trace.
	Trace = sim.Trace
)

// NewTrace returns an empty mission trace recorder.
func NewTrace() *Trace { return sim.NewTrace() }

// ReadTrace parses a trace written by Trace.WriteJSON.
func ReadTrace(r io.Reader) (*Trace, error) { return sim.ReadTrace(r) }

// RenderMission draws a trace over its grid as an ASCII map (asset tracks,
// final positions, destination, obstacles): the terminal analogue of
// TMPLAR's global view. Pass dest < 0 when unknown.
func RenderMission(g *Grid, tr *Trace, obstacles []NodeID, dest NodeID, width, height int) string {
	return render.Mission(g, tr, obstacles, dest, render.Options{Width: width, Height: height})
}

// RenderGrid draws a grid (and optional obstacles) as an ASCII map.
func RenderGrid(g *Grid, obstacles []NodeID, width, height int) string {
	return render.Grid(g, obstacles, render.Options{Width: width, Height: height})
}

// Collision policies.
const (
	// RecordCollisions counts collisions and continues.
	RecordCollisions = sim.RecordCollisions
	// AbortOnCollision fails the mission at the first collision.
	AbortOnCollision = sim.AbortOnCollision
)

// NewTeam builds n identical assets at the given sources.
func NewTeam(sources []NodeID, sensingRadius float64, maxSpeed int) Team {
	return vessel.NewTeam(sources, sensingRadius, maxSpeed)
}

// NewScenario spreads a team of n assets over the grid (sources evenly
// spaced, destination at the node farthest from the team) — the scenario
// construction the paper's experiments use. sensingRadius is in multiples
// of the grid's average edge weight.
func NewScenario(g *Grid, assets int, sensingRadiusFactor float64, maxSpeed, commEvery int) (Scenario, error) {
	return approx.TrainingScenario(g, assets, maxSpeed, sensingRadiusFactor, commEvery)
}

// FarthestNode returns the node maximizing the minimum hop distance from
// the sources.
func FarthestNode(g *Grid, sources []NodeID) NodeID { return approx.FarthestNode(g, sources) }

// Run executes a mission under a planner.
func Run(sc Scenario, p Planner, opts RunOptions) (Result, error) { return sim.Run(sc, p, opts) }

// RunContext is Run with cancellation: the mission aborts between epochs
// when ctx is cancelled or its deadline passes, returning the partial
// Result alongside a wrapped ctx.Err().
func RunContext(ctx context.Context, sc Scenario, p Planner, opts RunOptions) (Result, error) {
	return sim.RunContext(ctx, sc, p, opts)
}

// DefaultWeights returns the paper's scalarization: exploration first, time
// and fuel sharing the remainder.
func DefaultWeights() Weights { return rewardfn.DefaultWeights() }

// --- Approx-MaMoRL (the deployed planner) -----------------------------------

// TrainConfig configures Train; the zero value reproduces the paper's
// Section 4.2 setup (exact MaMoRL on a 50-node grid with 2 assets as the
// sample source).
type TrainConfig = approx.TrainConfig

// NeuralTrainOptions configures the NN-Approx-MaMoRL SGD budget; the zero
// value selects the paper's Table 5 settings.
type NeuralTrainOptions = neural.TrainOptions

// Model is a trained Approx-MaMoRL (or NN-Approx-MaMoRL) model: the learned
// stand-ins for the Teammate and Learning Modules.
type Model struct {
	pipe   *approx.Pipeline // nil when the model was loaded from disk
	cfg    TrainConfig      // the config Train was called with
	ext    features.Extractor
	linear *approx.LinearModel
	nn     *approx.NeuralModel
}

// Train runs the full Section 4.2 pipeline — train exact MaMoRL on a small
// grid, sample its P values and rewards, fit the linear model — and returns
// the deployable model.
func Train(cfg TrainConfig) (*Model, error) {
	pipe, err := approx.NewPipeline(cfg)
	if err != nil {
		return nil, err
	}
	lin, _, err := approx.FitLinearOpts(pipe.Data, nil, cfg.FitWorkers)
	if err != nil {
		return nil, err
	}
	return &Model{pipe: pipe, cfg: cfg, ext: pipe.Extractor, linear: lin}, nil
}

// Save persists the linear model's weights as JSON (the whole deployable
// planner state — a few hundred bytes).
func (m *Model) Save(path string) error { return m.linear.Save(path) }

// LoadModel restores a model saved by Save. Loaded models can plan but
// cannot FitNeural (the training samples are not persisted).
func LoadModel(path string) (*Model, error) {
	lin, err := approx.LoadLinear(path)
	if err != nil {
		return nil, err
	}
	return &Model{ext: features.New(), linear: lin}, nil
}

// FitNeural additionally fits the NN-Approx-MaMoRL networks on the same
// samples (Table 5's architecture). It fails on models loaded from disk.
func (m *Model) FitNeural(opts NeuralTrainOptions, seed int64) error {
	if m.pipe == nil {
		return errors.New("mamorl: FitNeural needs a freshly trained model (samples are not persisted)")
	}
	nn, _, err := approx.FitNeural(m.pipe.Data, opts, seed)
	if err != nil {
		return err
	}
	m.nn = nn
	return nil
}

// NewPlanner returns an Approx-MaMoRL planner. Construct a fresh planner
// per mission (planners keep per-mission cursors).
func (m *Model) NewPlanner(seed int64) Planner {
	return approx.NewPlanner(m.linear, m.ext, seed)
}

// NewNeuralPlanner returns an NN-Approx-MaMoRL planner; FitNeural must have
// been called.
func (m *Model) NewNeuralPlanner(seed int64) Planner {
	if m.nn == nil {
		panic("mamorl: FitNeural has not been called")
	}
	return approx.NewPlanner(m.nn, m.ext, seed)
}

// NewPartialKnowledgePlanner returns the partial-knowledge variant for a
// scenario whose destination is known to lie inside region.
func (m *Model) NewPartialKnowledgePlanner(sc Scenario, region Rect, seed int64) (Planner, error) {
	inner := approx.NewPlanner(m.linear, m.ext, seed)
	return partial.NewPlanner(sc, region, inner)
}

// ModelBytes reports the linear model's parameter footprint in bytes (the
// whole planner state Approx-MaMoRL deploys per asset).
func (m *Model) ModelBytes() int { return m.linear.Bytes() }

// --- Model registry -----------------------------------------------------------

// ModelRegistry is a content-addressed, versioned store of trained model
// artifacts (manifest JSON + gob weight blobs). tmplard warm-starts from one
// via TMPLAROptions.ModelDir; `mamorl train -model-dir` populates one.
type ModelRegistry = registry.Store

// ModelManifest describes one stored artifact: kind, training grid name and
// fingerprint, seed, training params, and the weight blob's SHA-256.
type ModelManifest = registry.Manifest

// OpenModelRegistry opens (creating if necessary) a model registry rooted at
// dir.
func OpenModelRegistry(dir string) (*ModelRegistry, error) { return registry.Open(dir) }

// SaveToRegistry registers the model's linear weights under its training
// provenance (grid, seed, params). Registering the same trained model twice
// is idempotent: the artifact is content-addressed. It fails on models
// loaded from disk, whose training grid is not persisted.
func (m *Model) SaveToRegistry(reg *ModelRegistry) (ModelManifest, error) {
	if m.pipe == nil {
		return ModelManifest{}, errors.New("mamorl: SaveToRegistry needs a freshly trained model (the training grid is not persisted)")
	}
	return registry.PutLinear(reg, m.linear, registry.TrainMeta(m.pipe.Scenario.Grid, m.cfg))
}

// --- Exact MaMoRL -------------------------------------------------------------

// ExactConfig configures the exact solver; the zero value uses the paper's
// hyperparameters (α=0.9, γ=0.8, β=0.3, T=3, T_B=10).
type ExactConfig = core.Config

// ExactPlanner is the exact table-based MaMoRL solver.
type ExactPlanner = core.Planner

// ErrMemoryBudget is returned when an instance's Lemma 2 table footprint
// exceeds the configured budget — the programmatic form of the paper's
// Table 6 N/A rows.
var ErrMemoryBudget = core.ErrMemoryBudget

// NewExactPlanner builds the exact solver; call Train on it before
// planning. Instances whose P/Q tables exceed the memory budget fail with
// ErrMemoryBudget.
func NewExactPlanner(sc Scenario, cfg ExactConfig) (*ExactPlanner, error) {
	return core.NewPlanner(sc, cfg, rewardfn.DefaultWeights())
}

// ExactTableBytes returns the dense P- and Q-table footprints (Lemmata 1-2)
// for an instance, before attempting to build it.
func ExactTableBytes(g *Grid, team Team) (pBytes, qBytes float64) {
	actions := core.InstanceActions(g, team)
	sp := team.MaxSpeedOver()
	return core.PTableBytes(g.NumNodes(), len(team), actions, sp),
		core.QTableBytes(g.NumNodes(), len(team), actions, sp)
}

// --- Baselines ----------------------------------------------------------------

// NewBaseline1 returns the round-robin baseline (one asset moves per epoch).
func NewBaseline1(seed int64) Planner { return baselines.NewRoundRobin(rewardfn.Weights{}, seed) }

// NewBaseline2 returns the independent, collision-prone baseline.
func NewBaseline2(seed int64) Planner { return baselines.NewIndependent(rewardfn.Weights{}, seed) }

// NewRandomWalk returns the uniform random baseline.
func NewRandomWalk(seed int64) Planner { return baselines.NewRandomWalk(seed) }

// --- Routing utilities ----------------------------------------------------------

// ShortestPath returns the Dijkstra shortest path between two nodes.
func ShortestPath(g *Grid, from, to NodeID) ([]NodeID, float64, error) {
	sp := graphalg.Dijkstra(g, from)
	path, err := sp.PathTo(to)
	if err != nil {
		return nil, 0, err
	}
	return path, sp.Dist[to], nil
}

// CruiseSpeed returns the speed minimizing the time/fuel average over an
// edge of the given weight (the paper's Table 2 rule).
func CruiseSpeed(weight float64, maxSpeed int) int { return vessel.CruiseSpeed(weight, maxSpeed) }

// FuelRate returns the fuel-per-time rate at a speed (Equation 4).
func FuelRate(speed float64) float64 { return vessel.FuelRate(speed) }

// --- Environment (weather) --------------------------------------------------

// Weather types: set Scenario.Weather to subject a mission to currents and
// storms (execution-time effects; planners command nominal speeds). This is
// the "dynamic weather-impacted environment" of the paper's TMPLAR
// deployment context (Section 4.7).
type (
	// WeatherField scales effective speed per edge and mission time.
	WeatherField = weather.Field
	// Gyre is a steady rotating current.
	Gyre = weather.Gyre
	// Storms is a set of drifting storm cells.
	Storms = weather.Storms
	// StormCell is one drifting disc of heavy weather.
	StormCell = weather.StormCell
	// CalmWeather is the neutral field.
	CalmWeather = weather.Calm
	// ComposeWeather multiplies several fields.
	ComposeWeather = weather.Compose
)

// --- TMPLAR service -------------------------------------------------------------

// TMPLARServer is the JSON-over-HTTP planning service of Section 4.7.
type TMPLARServer = tmplar.Server

// TMPLAROptions tunes the serving behavior: per-request planning deadline,
// request body limits, request logging, and the metrics registry.
type TMPLAROptions = tmplar.Options

// MetricsRegistry is the stdlib-only metrics registry backing GET /metrics.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.New() }

// NewTMPLARServer trains the deployable model and returns the service with
// default options. Register grids with InstallGrid, then serve Handler().
func NewTMPLARServer(seed int64) (*TMPLARServer, error) { return tmplar.NewServer(seed) }

// NewTMPLARServerOpts is NewTMPLARServer with explicit serving options.
func NewTMPLARServerOpts(seed int64, opts TMPLAROptions) (*TMPLARServer, error) {
	return tmplar.NewServerOpts(seed, opts)
}

// BuildInfo identifies the running binary: module version, Go version, and
// VCS metadata embedded by the toolchain. Served at GET /version.
type BuildInfo = tmplar.BuildInfo

// ReadBuildInfo collects the binary's embedded build metadata.
func ReadBuildInfo() BuildInfo { return tmplar.ReadBuildInfo() }

// MetricsSampler periodically snapshots a metrics registry into a ring of
// timestamped samples; it feeds GET /debug/metrics/stream and /debug/dash.
type MetricsSampler = obs.Sampler

// SLOSpec declares one service-level objective (latency or error-rate),
// evaluated continuously into burn-rate states served at GET /debug/slo.
// Set TMPLAROptions.SLOs to override the compiled-in defaults.
type SLOSpec = slo.Spec

// SLOEngine is the burn-rate evaluator behind GET /debug/slo; obtain a
// server's via TMPLARServer.SLO().
type SLOEngine = slo.Engine

// SLOReport is the evaluated verdict set served at GET /debug/slo.
type SLOReport = slo.Report

// DefaultSLOs returns the compiled-in objectives tmplard evaluates when no
// -slo-config file is given.
func DefaultSLOs() []SLOSpec { return slo.Defaults() }

// LoadSLOConfig reads and validates an SLO config file ({"slos": [...]}),
// for TMPLAROptions.SLOs / tmplard's -slo-config flag.
func LoadSLOConfig(path string) ([]SLOSpec, error) { return slo.LoadFile(path) }

// --- Custom planner support -----------------------------------------------------

// FrontierStep computes a step toward the nearest unsensed node; custom
// planners can use it as their exploration fallback. See sim.FrontierStep.
var FrontierStep = sim.FrontierStep

// LegalActions enumerates an asset's actions at a node.
func LegalActions(g *Grid, v NodeID, maxSpeed int) []Action { return sim.LegalActions(g, v, maxSpeed) }

// Wait is the wait action.
var Wait = sim.Wait

// NoDest marks an unknown destination in feature extraction.
const NoDest = features.NoDest
