package mamorl_test

import (
	"fmt"

	mamorl "github.com/routeplanning/mamorl"
)

// ExampleTrain shows the end-to-end flow: generate a grid, train the
// deployable Approx-MaMoRL model, and run a cooperative search mission.
func ExampleTrain() {
	g, err := mamorl.GenerateSyntheticGrid(mamorl.SyntheticConfig{
		Nodes: 200, Edges: 430, MaxOutDegree: 8, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	model, err := mamorl.Train(mamorl.TrainConfig{Seed: 7, SampleEpisodes: 3})
	if err != nil {
		panic(err)
	}
	sc, err := mamorl.NewScenario(g, 3, 1.2, 3, 3)
	if err != nil {
		panic(err)
	}
	res, err := mamorl.Run(sc, model.NewPlanner(1), mamorl.RunOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Found, res.Collisions)
	// Output: true 0
}

// ExampleExactTableBytes evaluates the Lemma 1-2 table sizes that make
// exact MaMoRL infeasible on realistic instances (Table 6's N/A rows).
func ExampleExactTableBytes() {
	g, err := mamorl.GenerateSyntheticGrid(mamorl.SyntheticConfig{
		Nodes: 400, Edges: 846, MaxOutDegree: 9, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	team := mamorl.NewTeam([]mamorl.NodeID{0, 100, 200}, 2, 5)
	_, qBytes := mamorl.ExactTableBytes(g, team)
	fmt.Printf("Q tables would need more than a petabyte: %v\n", qBytes > 1e15)
	// Output: Q tables would need more than a petabyte: true
}

// ExampleNewBaseline1 compares the round-robin baseline's makespan against
// the cooperative planner on one mission.
func ExampleNewBaseline1() {
	g, err := mamorl.GenerateSyntheticGrid(mamorl.SyntheticConfig{
		Nodes: 150, Edges: 330, MaxOutDegree: 8, Seed: 3,
	})
	if err != nil {
		panic(err)
	}
	sc, err := mamorl.NewScenario(g, 3, 1.2, 3, 3)
	if err != nil {
		panic(err)
	}
	res, err := mamorl.Run(sc, mamorl.NewBaseline1(1), mamorl.RunOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Found)
	// Output: true
}

// ExampleShortestPath routes between two nodes with Dijkstra.
func ExampleShortestPath() {
	g, err := mamorl.GenerateSyntheticGrid(mamorl.SyntheticConfig{
		Nodes: 50, Edges: 100, MaxOutDegree: 6, Seed: 2,
	})
	if err != nil {
		panic(err)
	}
	path, dist, err := mamorl.ShortestPath(g, 0, 49)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(path) >= 2, dist > 0, path[0] == 0)
	// Output: true true true
}
